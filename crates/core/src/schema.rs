//! Schemas of structured vectors.
//!
//! A structured vector's schema is the ordered list of its *leaf* fields.
//! Nesting (paper §2.1: "we allow data items to contain (nest) other
//! structured data items") is represented by dotted keypaths, so the nested
//! struct `{fold, input: {value}}` flattens to `[.fold, .input.value]`.

use crate::error::{Result, VoodooError};
use crate::keypath::KeyPath;
use crate::scalar::ScalarType;

/// An ordered, flattened schema: leaf keypaths with their scalar types.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<(KeyPath, ScalarType)>,
}

impl Schema {
    /// The empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// A single-field schema.
    pub fn single(kp: impl Into<KeyPath>, ty: ScalarType) -> Self {
        Schema {
            fields: vec![(kp.into(), ty)],
        }
    }

    /// Build from a field list; duplicate keypaths keep the last definition.
    pub fn from_fields(fields: Vec<(KeyPath, ScalarType)>) -> Self {
        let mut s = Schema::empty();
        for (kp, ty) in fields {
            s.upsert(kp, ty);
        }
        s
    }

    /// Number of leaf fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate over `(keypath, type)` pairs in field order.
    pub fn iter(&self) -> impl Iterator<Item = &(KeyPath, ScalarType)> {
        self.fields.iter()
    }

    /// Position of an exact leaf field.
    pub fn index_of(&self, kp: &KeyPath) -> Option<usize> {
        self.fields.iter().position(|(f, _)| f == kp)
    }

    /// Type of an exact leaf field.
    pub fn field_type(&self, kp: &KeyPath) -> Option<ScalarType> {
        self.fields.iter().find(|(f, _)| f == kp).map(|(_, t)| *t)
    }

    /// Resolve a keypath that may address a leaf *or* a subtree.
    ///
    /// Returns the matching leaves as `(relative_path, type)` pairs, where
    /// `relative_path` is the remainder below `kp` (root for an exact leaf
    /// match). Errors if nothing matches.
    pub fn resolve(&self, kp: &KeyPath, context: &str) -> Result<Vec<(KeyPath, ScalarType)>> {
        let matches: Vec<_> = self
            .fields
            .iter()
            .filter(|(f, _)| f.starts_with(kp))
            .map(|(f, t)| (f.strip_prefix(kp).expect("starts_with checked"), *t))
            .collect();
        if matches.is_empty() {
            Err(VoodooError::UnknownKeyPath {
                keypath: kp.clone(),
                context: context.to_string(),
            })
        } else {
            Ok(matches)
        }
    }

    /// Insert or replace a leaf field (replacement keeps position).
    pub fn upsert(&mut self, kp: KeyPath, ty: ScalarType) {
        if let Some(i) = self.index_of(&kp) {
            self.fields[i].1 = ty;
        } else {
            self.fields.push((kp, ty));
        }
    }

    /// The schema of the subtree below `kp`, re-rooted at `out`.
    ///
    /// `Project(.out, V, .kp)` produces `V`'s subtree under `.kp` renamed to
    /// live under `.out`.
    pub fn project(&self, kp: &KeyPath, out: &KeyPath, context: &str) -> Result<Schema> {
        let leaves = self.resolve(kp, context)?;
        Ok(Schema::from_fields(
            leaves
                .into_iter()
                .map(|(rel, ty)| (out.child(&rel.to_string()), ty))
                .collect(),
        ))
    }

    /// Concatenate two schemas (fields of `other` appended; duplicates of
    /// existing keypaths are replaced).
    pub fn merged(&self, other: &Schema) -> Schema {
        let mut s = self.clone();
        for (kp, ty) in &other.fields {
            s.upsert(kp.clone(), *ty);
        }
        s
    }
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (kp, ty)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{kp}: {ty:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested() -> Schema {
        Schema::from_fields(vec![
            (KeyPath::new(".fold"), ScalarType::I64),
            (KeyPath::new(".input.value"), ScalarType::F32),
            (KeyPath::new(".input.flag"), ScalarType::Bool),
        ])
    }

    #[test]
    fn resolve_leaf_and_subtree() {
        let s = nested();
        let leaf = s.resolve(&KeyPath::new(".fold"), "t").unwrap();
        assert_eq!(leaf, vec![(KeyPath::root(), ScalarType::I64)]);

        let sub = s.resolve(&KeyPath::new(".input"), "t").unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0], (KeyPath::new("value"), ScalarType::F32));

        assert!(s.resolve(&KeyPath::new(".nope"), "t").is_err());
    }

    #[test]
    fn project_renames_subtree() {
        let s = nested();
        let p = s
            .project(&KeyPath::new(".input"), &KeyPath::new(".out"), "t")
            .unwrap();
        assert_eq!(
            p.field_type(&KeyPath::new(".out.value")),
            Some(ScalarType::F32)
        );
        assert_eq!(
            p.field_type(&KeyPath::new(".out.flag")),
            Some(ScalarType::Bool)
        );

        let leaf = s
            .project(&KeyPath::new(".fold"), &KeyPath::new(".f"), "t")
            .unwrap();
        assert_eq!(leaf.field_type(&KeyPath::new(".f")), Some(ScalarType::I64));
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut s = nested();
        s.upsert(KeyPath::new(".fold"), ScalarType::I32);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of(&KeyPath::new(".fold")), Some(0));
        assert_eq!(s.field_type(&KeyPath::new(".fold")), Some(ScalarType::I32));
    }

    #[test]
    fn merged_appends() {
        let s =
            Schema::single(".a", ScalarType::I32).merged(&Schema::single(".b", ScalarType::F64));
        assert_eq!(s.len(), 2);
    }
}
