//! # Voodoo — a vector algebra for portable database performance
//!
//! This crate is the umbrella for a full reproduction of
//! *Pirk, Moll, Zaharia, Madden: "Voodoo - A Vector Algebra for Portable
//! Database Performance on Modern Hardware", VLDB 2016*.
//!
//! It re-exports the individual subsystem crates:
//!
//! * [`core`] — the Voodoo algebra: structured vectors, operators, programs
//! * [`interp`] — the reference (bulk) interpreter backend
//! * [`compile`] — the fragment compiler and parallel CPU backend
//! * [`gpusim`] — the simulated GPU device (cost model)
//! * [`backend`] — the unified `Backend`/`PreparedPlan` API over all
//!   executors, plus the keyed prepared-plan cache
//! * [`storage`] — MonetDB-style columnar storage substrate
//! * [`tpch`] — TPC-H data generator and reference answers
//! * [`relational`] — relational frontend (logical plans, SQL subset,
//!   lowering), the shared [`relational::Engine`], the
//!   [`relational::Session`] handles onto it, the
//!   [`relational::serve`] admission-controlled serving front door, and
//!   [`relational::views`] — materialized views over the SQL subset
//! * [`ivm`] — DBSP-style incremental view maintenance: Z-set deltas,
//!   program differentiation, arranged join/aggregate state
//! * [`baselines`] — HyPeR-style and Ocelot-style comparison engines
//! * [`algos`] — cookbook of canonical Voodoo programs (paper listings +
//!   §6 related-work translations: hashing, bounded cuckoo, compaction)
//! * [`opt`] — cost-model-driven plan optimizer (the §7 "automatic
//!   exploration of the design space" future work)
//! * [`faults`] — deterministic fault injection: wrap any backend in a
//!   seeded [`faults::FaultPlan`] that injects scripted errors, panics,
//!   latency spikes, and pool poisonings — the harness behind the serve
//!   layer's robustness tests
//!
//! For the map of how these crates compose — the execution pipeline
//! from SQL/TPC-H text to morsel tasks, the bit-identity and versioning
//! invariants, and the serving/scheduler architecture — see
//! `ARCHITECTURE.md` at the repository root. All code blocks below
//! compile and run as doctests (`cargo test --doc`), so the quickstart
//! cannot rot.
//!
//! ## Quickstart
//!
//! One shared [`relational::Engine`] serves every frontend (raw Voodoo
//! programs, named TPC-H queries, SQL strings) and every backend (the
//! interpreter, the compiled CPU, the simulated GPU) — from as many
//! threads as you like. A [`relational::Session`] is a cheap clonable
//! handle onto an engine; statements are prepared once into a sharded,
//! LRU-bounded plan cache, execute against immutable catalog snapshots
//! (no lock held while running), and re-targeting one to different
//! hardware is a one-word diff — the paper's portability claim as API.
//!
//! ```
//! use voodoo::core::{KeyPath, Program, ScalarValue};
//! use voodoo::relational::Session;
//! use voodoo::storage::Catalog;
//!
//! // Hierarchical summation (paper Figure 3).
//! let mut p = Program::new();
//! let input = p.load("input");
//! let ids = p.range_like(0, input, 1);
//! let part = p.div_const(ids, 4);
//! let psum = p.fold_sum(part, input);
//! let total = p.fold_sum_global(psum);
//! p.ret(total);
//!
//! let mut cat = Catalog::in_memory();
//! cat.put_i64_column("input", &[1, 2, 3, 4, 5, 6, 7, 8]);
//! let session = Session::new(cat);
//!
//! // The same statement on three backends — bit-identical by construction.
//! let stmt = session.program(p);
//! for backend in ["interp", "cpu", "gpu"] {
//!     let out = stmt.run_on(backend).unwrap();
//!     assert_eq!(
//!         out.raw().returns[0].value_at(0, &KeyPath::val()),
//!         Some(ScalarValue::I64(36)),
//!     );
//! }
//! // Re-runs hit the prepared-plan cache instead of recompiling.
//! assert!(session.cache_stats().misses >= 3);
//! let _ = stmt.run().unwrap();
//! assert!(session.cache_stats().hits >= 1);
//! ```
//!
//! The relational frontends ride the same facade, and serving many
//! clients is a `.clone()` per thread — every handle shares the engine's
//! catalog, plan cache and metrics ([`relational::Statement`]s are `Send`
//! too, so they can cross threads themselves):
//!
//! ```
//! use voodoo::relational::{Session, StatementSpec};
//! use voodoo::tpch::queries::Query;
//!
//! let session = Session::tpch(0.002); // generate + prepare TPC-H
//! let q6 = session.run_query(Query::Q6).unwrap();
//! let gpu = session.query(Query::Q6).run_on("gpu").unwrap();
//! assert_eq!(&q6, gpu.rows());
//! let adhoc = session
//!     .run_sql("SELECT MIN(l_quantity), MAX(l_quantity) FROM lineitem")
//!     .unwrap();
//! assert_eq!(adhoc.len(), 1);
//!
//! // Concurrency: cloned handles, one engine, shared plan cache.
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         let handle = session.clone();
//!         let q6 = &q6;
//!         scope.spawn(move || {
//!             assert_eq!(&handle.run_query(Query::Q6).unwrap(), q6);
//!         });
//!     }
//! });
//! // Or: fan a whole batch across a scoped thread pool.
//! let batch = session.run_batch(&[
//!     StatementSpec::tpch(Query::Q6),
//!     StatementSpec::tpch(Query::Q6).on("gpu"),
//!     StatementSpec::sql("SELECT COUNT(*) FROM lineitem"),
//! ]);
//! assert!(batch.iter().all(|r| r.is_ok()));
//! // The engine kept score.
//! let m = session.metrics();
//! assert!(m.queries_served >= 9 && m.p99_seconds.is_some());
//! ```
//!
//! ## Static verification
//!
//! No program executes unverified: every `Backend::prepare` runs the
//! [`verify`] analyzer (structure → shape/sentinel → effects →
//! parallel-safety) and ill-formed programs come back as
//! `VoodooError::Rejected` with pointed [`core::Diagnostic`]s instead
//! of panics or wrong answers. [`relational::Session::verify`] (and
//! `Statement::verify` / `ServerHandle::verify`) expose the same
//! pipeline as a dry run — lint a statement before spending a queue
//! slot or a plan-cache entry on it:
//!
//! ```
//! use voodoo::core::{Pass, Program, VRef, VoodooError};
//! use voodoo::relational::{Session, StatementSpec};
//! use voodoo::storage::Catalog;
//!
//! let mut cat = Catalog::in_memory();
//! cat.put_i64_column("t", &[1, 2, 3]);
//! let session = Session::new(cat);
//!
//! // A well-formed program verifies clean.
//! let mut ok = Program::new();
//! let v = ok.load("t");
//! let total = ok.fold_sum_global(v);
//! ok.ret(total);
//! assert!(session.program(ok).verify().is_empty());
//!
//! // A forward reference is caught by the structure pass, with the
//! // diagnostic naming the offending statement.
//! let mut bad = Program::new();
//! let t = bad.load("t");
//! bad.add(t, VRef(9)); // %9 is never defined
//! bad.ret(t);
//! let diags = session.verify(&StatementSpec::program(bad.clone()));
//! assert_eq!(diags[0].stmt, Some(1));
//! assert_eq!(diags[0].pass, Pass::Structure);
//! // e.g. "[structure] %1 Add: operand %9 is not defined ..."
//! assert!(diags[0].to_string().starts_with("[structure] %1"));
//!
//! // Running it anyway surfaces the same diagnostics as an error —
//! // on every backend, before any planning happens.
//! match session.program(bad).run() {
//!     Err(VoodooError::Rejected(ds)) => assert_eq!(ds[0].stmt, Some(1)),
//!     other => panic!("expected rejection, got {other:?}"),
//! }
//! ```
//!
//! ## Parallel execution
//!
//! Statements don't just run concurrently — each statement can fan
//! **across** cores. The storage layer slices a table's columns into
//! aligned morsels ([`storage::Partitioning`], cached per table
//! version), and the compiled CPU backend executes the hot kernels —
//! selection, folds, grouped aggregation (partial per-partition tables
//! merged in morsel order), the expression side of join builds —
//! partition-parallel, **bit-identical** to the serial interpreter
//! oracle (float sums stay serial: bit-identity beats reassociation).
//! One knob picks the layout: `Parallelism::Off` (serial),
//! `Fixed(n)`, or `Auto` (machine-sized, capped per serving thread).
//!
//! Morsels execute on a **persistent work-stealing pool**
//! ([`compile::pool`]) rather than per-statement thread spawns: a
//! statement's morsels are queued on one long-lived worker's deque
//! (LIFO for locality), and idle workers *steal* the oldest entries
//! (FIFO), so a skewed morsel rebalances across the machine instead of
//! stalling its statement. Domains are over-decomposed
//! (`steal_grain`, default 4 morsels per worker) to leave the
//! scheduler units to move; results still merge in morsel order, so
//! scheduling never changes a bit of output. A panicking morsel task
//! fails only its own statement — the pool keeps serving.
//!
//! ```
//! use voodoo::backend::Parallelism;
//! use voodoo::relational::Session;
//! use voodoo::tpch::queries::Query;
//!
//! let session = Session::tpch(0.002);
//! let serial = session.query(Query::Q1).run_on("interp").unwrap();
//! session.set_cpu_parallelism(Parallelism::Fixed(4));
//! let partitioned = session.query(Query::Q1).run().unwrap();
//! assert_eq!(serial.rows(), partitioned.rows()); // bit-identical
//! // Morsel fan-out and pool scheduling are first-class accounting.
//! let m = session.metrics();
//! assert!(m.partitions_used >= m.queries_served);
//! assert!(m.steals <= m.pool_tasks);
//! ```
//!
//! *Choosing P*: `Auto` is right for dedicated statements (it resolves
//! to the core count, max 8); under the serving front door each worker
//! thread carries a budget of `cores / workers` — the lease it takes
//! on the shared pool — so intra-statement morsels and the admission
//! pool compose to the machine instead of oversubscribing it.
//! `Fixed(n)` pins the offered fan-out regardless (still budget-capped
//! when serving); small domains (< 4096 rows by default) stay serial
//! because even a pool handoff costs more than the scan. Watch
//! [`relational::EngineMetrics`]: `partitions_used` is the fan-out
//! statements *offered*, `pool_tasks`/`steals` are what the scheduler
//! did with it (steals > 0 means skew was absorbed, not suffered). See
//! `examples/scaling.rs` and `repro scaling` for the speedup sweep,
//! including pooled rows at 2 and 8 workers.
//!
//! ## Materialized views
//!
//! Repeated dashboard-style queries shouldn't rescan the data each time.
//! [`relational::Engine::create_view`] caches a SQL query's result;
//! reads serve the cache, and when base tables change the view refreshes
//! from **captured row deltas** in `O(changes)` — the DBSP recipe
//! ([`ivm`]): row-level mutations ([`storage::Catalog::append_rows`] /
//! `update_rows` / `delete_rows`) log signed row images, linear
//! operators apply themselves to the delta, and grouped `MIN`/`MAX`
//! stay exact under retraction via per-group value histograms. Whatever
//! can't be captured (a whole-table rewrite) falls back to a *counted*
//! full recompute — the view is always bit-identical to recomputing
//! from scratch, and the metrics say which path paid for it.
//!
//! ```
//! use voodoo::relational::{Session, StatementSpec};
//! use voodoo::storage::Catalog;
//!
//! let mut cat = Catalog::in_memory();
//! let mut t = voodoo::storage::Table::new("sales");
//! t.add_column(voodoo::storage::TableColumn::from_buffer(
//!     "region", voodoo::core::Buffer::I64(vec![0, 1, 0])));
//! t.add_column(voodoo::storage::TableColumn::from_buffer(
//!     "amount", voodoo::core::Buffer::I64(vec![10, 20, 30])));
//! cat.insert_table(t);
//! let session = Session::new(cat);
//!
//! session
//!     .create_view("by_region",
//!         "SELECT region, SUM(amount), COUNT(*) FROM sales GROUP BY region")
//!     .unwrap();
//! assert_eq!(session.read_view("by_region").unwrap(),
//!            vec![vec![0, 40, 2], vec![1, 20, 1]]);
//!
//! // A batched append refreshes the view from the delta, not a rescan.
//! session.mutate_catalog(|c| c.append_rows("sales", &[vec![1, 5]]));
//! assert_eq!(session.read_view("by_region").unwrap(),
//!            vec![vec![0, 40, 2], vec![1, 25, 2]]);
//! let m = session.metrics();
//! assert_eq!(m.delta_refreshes, 1);
//! // Maintenance touched the 1-row delta (staged + streamed), not the table.
//! assert_eq!(m.rows_delta, 2);
//! assert_eq!(m.full_recomputes, 1, "only the initial materialization");
//!
//! // Views serve through the admission front door like any statement.
//! let out = session.run_batch(&[StatementSpec::view("by_region")]);
//! assert_eq!(out[0].as_ref().unwrap().rows().rows.len(), 2);
//! assert!(session.metrics().view_hits >= 1);
//! ```
//!
//! ## Batched ingest
//!
//! Sustained appends are the write-path hot loop, and they cost
//! O(batch), not O(table): [`relational::Session::append_rows`] seals
//! the batch into an `Arc`-shared append segment
//! ([`storage::Segment`]) and publishes a snapshot that shares the base
//! buffers and every earlier segment with all live readers — appending
//! one row to a 10M-row table copies one row, never 10M (invariant 8 in
//! `ARCHITECTURE.md`). Readers see the merged view immediately;
//! compaction folds segments back into the base in the background of
//! the write path, without ever changing the logical table.
//!
//! ```
//! use voodoo::relational::Session;
//! use voodoo::storage::Catalog;
//!
//! let mut cat = Catalog::in_memory();
//! cat.put_i64_column("events", &(0..10_000).collect::<Vec<_>>());
//! let session = Session::new(cat);
//!
//! let reader = session.catalog(); // a concurrent reader's snapshot
//! assert!(session.append_rows("events", &[vec![7], vec![8]]));
//! // The reader keeps its view; the new snapshot shares its storage.
//! let published = session.catalog();
//! let (before, after) = (reader.table("events").unwrap(),
//!                        published.table("events").unwrap());
//! assert_eq!((before.len, after.len), (10_000, 10_002));
//! assert!(after.columns[0].data.shares_storage_with(&before.columns[0].data));
//! // Queries observe the appended rows immediately (merged lazily).
//! assert_eq!(
//!     session.run_sql("SELECT COUNT(*), MAX(val) FROM events").unwrap(),
//!     vec![vec![10_002, 9_999]],
//! );
//! ```
//!
//! ## Serving
//!
//! Under real traffic you don't want a thread per statement — you want a
//! **front door**: [`relational::serve`] puts a bounded admission queue
//! and a fixed worker pool in front of the engine. Admission is
//! explicit: `submit` never blocks (a full queue *sheds* the request and
//! bumps the shed counters), `submit_wait` blocks for space with an
//! optional deadline (expiry returns `Timeout`, never a hang). Admitted
//! work comes back through a typed [`relational::Receipt`].
//!
//! *Queue sizing*: capacity bounds worst-case queueing latency —
//! roughly `capacity / workers × mean service time`; size it to the
//! latency budget, not the burst size, and let the shed path absorb
//! overload. *Fairness*: open one weighted
//! [`relational::ServeSession`] per tenant; under saturation each
//! session receives `weight / total_weight` of the pool (FIFO within a
//! session), so one chatty tenant cannot starve the rest. *Shed
//! semantics*: a shed is counted (per session, per server, and on
//! [`relational::EngineMetrics::sheds`]) and reported to the caller —
//! it is never silent, and queued work is never dropped.
//!
//! ```
//! use voodoo::relational::{ServeConfig, Session, StatementSpec};
//! use voodoo::tpch::queries::Query;
//!
//! let session = Session::tpch(0.002);
//! let server = session.serve(
//!     ServeConfig::default().with_queue_capacity(16).with_workers(2),
//! );
//! // Two tenants, 2:1 weighted under saturation.
//! let alice = server.session(2);
//! let bob = server.session(1);
//! let a = alice.submit(StatementSpec::tpch(Query::Q6)).unwrap();
//! let b = bob.submit(StatementSpec::sql("SELECT COUNT(*) FROM lineitem")).unwrap();
//! assert!(!a.wait().unwrap().rows().is_empty());
//! assert_eq!(b.wait().unwrap().rows().rows.len(), 1);
//! assert_eq!(alice.stats().served, 1);
//! // Queue depth and sheds are first-class engine metrics.
//! let m = session.metrics();
//! assert_eq!(m.queue_depth, 0);
//! assert_eq!(m.sheds, 0);
//! server.shutdown();
//! ```
//!
//! ## Overload control & faults
//!
//! The hard queue bound is the blunt defense; production overload wants
//! the adaptive one: [`relational::ServeConfig::with_overload`] runs a
//! CoDel-style controller that sheds *before* the queue fills whenever
//! even the minimum queue wait of an interval exceeds the sojourn
//! target. Shed clients converge with [`relational::Retry`] (seeded
//! decorrelated-jitter backoff) instead of thundering back; deadlines
//! given at submission propagate into execution, so a statement whose
//! caller stopped waiting is dropped at dequeue, not executed. Every
//! admitted statement terminates in exactly one stats bucket —
//! `submitted == served + shed + timed_out` (invariant 9 in
//! `ARCHITECTURE.md`): nothing is ever silently lost.
//!
//! ```
//! use std::time::Instant;
//! use voodoo::relational::{Retry, ServeConfig, ServeError, Session, StatementSpec};
//! use voodoo::tpch::queries::Query;
//!
//! let session = Session::tpch(0.002);
//! let server = session.serve(
//!     ServeConfig::default().with_queue_capacity(8).with_workers(1),
//! );
//! let tenant = server.session(1);
//! // Shed submissions retry on a seeded, decorrelated backoff schedule.
//! let retry = Retry::new().with_attempts(8).with_seed(42);
//! let receipt = retry
//!     .run(|| tenant.submit(StatementSpec::tpch(Query::Q6)))
//!     .unwrap();
//! assert!(!receipt.wait().unwrap().rows().is_empty());
//! // An already-expired propagated deadline is dropped at dequeue —
//! // the statement never executes, and the drop is accounted.
//! let dead = tenant
//!     .submit_deadline(StatementSpec::tpch(Query::Q6), Instant::now())
//!     .unwrap();
//! assert!(matches!(dead.wait(), Err(ServeError::Timeout)));
//! let stats = tenant.stats();
//! assert_eq!(stats.timed_out, 1);
//! assert_eq!(stats.submitted, stats.served + stats.shed + stats.timed_out);
//! server.shutdown();
//! ```
//!
//! And because an untested failure path is a broken one, [`faults`]
//! turns any registered backend into a deterministically faulty one: a
//! seeded [`faults::FaultPlan`] injects errors, panics, latency spikes
//! and morsel-pool poisonings at scripted call indices. Every injected
//! fault surfaces as exactly one failed receipt; the server, pool, and
//! cache keep serving, bit-identically, afterwards.
//!
//! ```
//! use std::sync::Arc;
//! use voodoo::faults::{Fault, FaultPlan};
//! use voodoo::relational::{Engine, ServeConfig, StatementSpec};
//! use voodoo::tpch::queries::Query;
//!
//! let engine = Arc::new(Engine::tpch(0.002));
//! // Wrap the interpreter: its 2nd execution (call index 1, 0-based)
//! // fails, everything else runs.
//! let plan = FaultPlan::fault_execute(1, Fault::Error);
//! let inner = engine.backend("interp").unwrap();
//! engine.register("interp", plan.wrap(inner));
//!
//! let server = engine.serve(ServeConfig::default().with_workers(1));
//! let spec = StatementSpec::tpch(Query::Q6).on("interp");
//! let outcomes: Vec<bool> = (0..3)
//!     .map(|_| server.submit(spec.clone()).unwrap().wait().is_ok())
//!     .collect();
//! assert_eq!(outcomes, [true, false, true], "exactly one failed receipt");
//! server.shutdown();
//! ```
//!
//! ## Sharded serving
//!
//! One engine is one machine's worth of serving; [`relational::shard`]
//! puts N engines behind one handle. A
//! [`relational::ShardedEngine`] routes every table to exactly one
//! shard (FNV-1a hash by default; range and manual assignment
//! supported), sends single-shard statements straight through the
//! owner's admission queue, and runs cross-shard statements by
//! scatter-gather over their analyzer-derived read set — with results
//! **bit-identical** to a single engine over the same data (invariant
//! 10 in `ARCHITECTURE.md`). Per-shard metrics sum exactly into the
//! aggregate, errors name the failing shard, and a fault plan on one
//! shard fails only the statements that touch it.
//!
//! ```
//! use voodoo::relational::shard::{Router, ShardedEngine};
//! use voodoo::relational::{Session, StatementSpec};
//! use voodoo::tpch::queries::Query;
//!
//! let sharded = ShardedEngine::tpch(0.002, 2);
//! let oracle = Session::tpch(0.002);
//!
//! // Q6 reads one table (owner's queue); Q12 spans shards
//! // (scatter-gather). Both are bit-identical to the single engine.
//! let session = sharded.session(1);
//! for q in [Query::Q6, Query::Q12] {
//!     let got = session.run(StatementSpec::tpch(q)).unwrap();
//!     assert_eq!(got.rows(), oracle.query(q).run().unwrap().rows());
//! }
//!
//! // Mutations route to the owning shard; metrics sum exactly.
//! let m = sharded.metrics();
//! let split: u64 = m.per_shard.iter().map(|s| s.queries_served).sum::<u64>()
//!     + m.coordinator.queries_served;
//! assert_eq!(m.aggregate.queries_served, split);
//! sharded.shutdown();
//! ```
pub use voodoo_algos as algos;
pub use voodoo_backend as backend;
pub use voodoo_baselines as baselines;
pub use voodoo_compile as compile;
pub use voodoo_core as core;
pub use voodoo_faults as faults;
pub use voodoo_gpusim as gpusim;
pub use voodoo_interp as interp;
pub use voodoo_ivm as ivm;
pub use voodoo_opt as opt;
pub use voodoo_relational as relational;
pub use voodoo_storage as storage;
pub use voodoo_tpch as tpch;
pub use voodoo_verify as verify;
