//! Structured vectors — the Voodoo data model (paper §2.1).
//!
//! A [`StructuredVector`] is "an ordered collection of fixed size data items,
//! all of which conform to the same schema". Storage here is *columnar*: one
//! [`Column`] per leaf field, which is exactly how the OpenCL backend of the
//! paper lays vectors out in device memory.
//!
//! Empty slots (ε, paper Figure 7) are first-class: every column carries an
//! emptiness mask. ε appears when a `Scatter` does not set a slot, when a
//! `FoldSelect` does not select one, or as the padding of controlled folds.

use crate::error::{Result, VoodooError};
use crate::keypath::KeyPath;
use crate::scalar::{ScalarType, ScalarValue};
use crate::schema::Schema;

/// A typed, contiguous buffer of scalar values.
#[derive(Debug, Clone, PartialEq)]
pub enum Buffer {
    /// Boolean values.
    Bool(Vec<bool>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
}

impl Buffer {
    /// An empty buffer of the given type.
    pub fn new(ty: ScalarType) -> Buffer {
        Buffer::with_len(ty, 0)
    }

    /// A zero-initialized buffer of the given type and length.
    pub fn with_len(ty: ScalarType, len: usize) -> Buffer {
        match ty {
            ScalarType::Bool => Buffer::Bool(vec![false; len]),
            ScalarType::I32 => Buffer::I32(vec![0; len]),
            ScalarType::I64 => Buffer::I64(vec![0; len]),
            ScalarType::F32 => Buffer::F32(vec![0.0; len]),
            ScalarType::F64 => Buffer::F64(vec![0.0; len]),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Buffer::Bool(v) => v.len(),
            Buffer::I32(v) => v.len(),
            Buffer::I64(v) => v.len(),
            Buffer::F32(v) => v.len(),
            Buffer::F64(v) => v.len(),
        }
    }

    /// Whether the buffer holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element type.
    pub fn ty(&self) -> ScalarType {
        match self {
            Buffer::Bool(_) => ScalarType::Bool,
            Buffer::I32(_) => ScalarType::I32,
            Buffer::I64(_) => ScalarType::I64,
            Buffer::F32(_) => ScalarType::F32,
            Buffer::F64(_) => ScalarType::F64,
        }
    }

    /// Read position `i` (panics if out of bounds).
    pub fn get(&self, i: usize) -> ScalarValue {
        match self {
            Buffer::Bool(v) => ScalarValue::Bool(v[i]),
            Buffer::I32(v) => ScalarValue::I32(v[i]),
            Buffer::I64(v) => ScalarValue::I64(v[i]),
            Buffer::F32(v) => ScalarValue::F32(v[i]),
            Buffer::F64(v) => ScalarValue::F64(v[i]),
        }
    }

    /// Write position `i` with a value cast to the buffer's type.
    pub fn set(&mut self, i: usize, value: ScalarValue) {
        match self {
            Buffer::Bool(v) => v[i] = value.is_truthy(),
            Buffer::I32(v) => v[i] = value.as_i64() as i32,
            Buffer::I64(v) => v[i] = value.as_i64(),
            Buffer::F32(v) => v[i] = value.as_f64() as f32,
            Buffer::F64(v) => v[i] = value.as_f64(),
        }
    }

    /// Append a value cast to the buffer's type.
    pub fn push(&mut self, value: ScalarValue) {
        match self {
            Buffer::Bool(v) => v.push(value.is_truthy()),
            Buffer::I32(v) => v.push(value.as_i64() as i32),
            Buffer::I64(v) => v.push(value.as_i64()),
            Buffer::F32(v) => v.push(value.as_f64() as f32),
            Buffer::F64(v) => v.push(value.as_f64()),
        }
    }

    /// Borrow as `&[i64]`, if that is the element type.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Buffer::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[i32]`, if that is the element type.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            Buffer::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[f32]`, if that is the element type.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            Buffer::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[f64]`, if that is the element type.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Buffer::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Append every value of `other` (which must have the same element
    /// type) — the bulk concatenation segmented storage folds with.
    pub fn extend_from(&mut self, other: &Buffer) {
        match (self, other) {
            (Buffer::Bool(a), Buffer::Bool(b)) => a.extend_from_slice(b),
            (Buffer::I32(a), Buffer::I32(b)) => a.extend_from_slice(b),
            (Buffer::I64(a), Buffer::I64(b)) => a.extend_from_slice(b),
            (Buffer::F32(a), Buffer::F32(b)) => a.extend_from_slice(b),
            (Buffer::F64(a), Buffer::F64(b)) => a.extend_from_slice(b),
            (a, b) => panic!("extend_from type mismatch: {:?} vs {:?}", a.ty(), b.ty()),
        }
    }
}

/// One leaf field of a structured vector: values plus an ε mask.
///
/// Internally copy-on-write: the value buffer and ε mask live behind
/// `Arc`s, so cloning a column (and therefore snapshotting a table) is
/// O(1) regardless of row count. Mutators take the slow deep-copy path
/// only when the storage is actually shared with another clone.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: std::sync::Arc<Buffer>,
    empty: std::sync::Arc<Vec<bool>>,
}

impl Column {
    /// A column of `len` ε slots.
    pub fn empties(ty: ScalarType, len: usize) -> Column {
        Column {
            data: std::sync::Arc::new(Buffer::with_len(ty, len)),
            empty: std::sync::Arc::new(vec![true; len]),
        }
    }

    /// A fully populated column from a buffer (no ε slots).
    pub fn from_buffer(data: Buffer) -> Column {
        let len = data.len();
        Column {
            data: std::sync::Arc::new(data),
            empty: std::sync::Arc::new(vec![false; len]),
        }
    }

    /// Build from parts; `empty.len()` must equal `data.len()`.
    pub fn from_parts(data: Buffer, empty: Vec<bool>) -> Column {
        assert_eq!(data.len(), empty.len(), "column parts must align");
        Column {
            data: std::sync::Arc::new(data),
            empty: std::sync::Arc::new(empty),
        }
    }

    /// Whether `self` and `other` share the same underlying value buffer
    /// (true only for clones that have not diverged) — the observable
    /// proof that snapshot publication did not copy this column.
    pub fn shares_storage_with(&self, other: &Column) -> bool {
        std::sync::Arc::ptr_eq(&self.data, &other.data)
    }

    /// Append every slot of `other` (same element type required).
    pub fn extend_from(&mut self, other: &Column) {
        std::sync::Arc::make_mut(&mut self.data).extend_from(other.buffer());
        std::sync::Arc::make_mut(&mut self.empty).extend_from_slice(other.empty_mask());
    }

    /// Number of slots (including ε).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type.
    pub fn ty(&self) -> ScalarType {
        self.data.ty()
    }

    /// Read slot `i`; `None` for ε.
    pub fn get(&self, i: usize) -> Option<ScalarValue> {
        if self.empty[i] {
            None
        } else {
            Some(self.data.get(i))
        }
    }

    /// Whether slot `i` is ε.
    pub fn is_slot_empty(&self, i: usize) -> bool {
        self.empty[i]
    }

    /// Write slot `i` (clears ε).
    pub fn set(&mut self, i: usize, value: ScalarValue) {
        std::sync::Arc::make_mut(&mut self.data).set(i, value);
        std::sync::Arc::make_mut(&mut self.empty)[i] = false;
    }

    /// Mark slot `i` as ε.
    pub fn clear(&mut self, i: usize) {
        std::sync::Arc::make_mut(&mut self.empty)[i] = true;
    }

    /// Append a value or an ε slot.
    pub fn push(&mut self, value: Option<ScalarValue>) {
        let ty = self.ty();
        match value {
            Some(v) => {
                std::sync::Arc::make_mut(&mut self.data).push(v);
                std::sync::Arc::make_mut(&mut self.empty).push(false);
            }
            None => {
                std::sync::Arc::make_mut(&mut self.data).push(ScalarValue::I64(0).cast(ty));
                std::sync::Arc::make_mut(&mut self.empty).push(true);
            }
        }
    }

    /// The raw value buffer (ε slots hold unspecified values).
    pub fn buffer(&self) -> &Buffer {
        &self.data
    }

    /// Mutable access to the raw value buffer (deep-copies if shared).
    pub fn buffer_mut(&mut self) -> &mut Buffer {
        std::sync::Arc::make_mut(&mut self.data)
    }

    /// The ε mask (true = empty).
    pub fn empty_mask(&self) -> &[bool] {
        &self.empty
    }

    /// Whether no slot is ε (lets backends skip mask checks).
    pub fn is_dense(&self) -> bool {
        self.empty.iter().all(|&e| !e)
    }

    /// Iterate over slots as `Option<ScalarValue>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<ScalarValue>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Non-ε values only.
    pub fn present(&self) -> impl Iterator<Item = ScalarValue> + '_ {
        self.iter().flatten()
    }
}

/// A structured vector: a fixed number of slots with columnar leaf fields.
///
/// Invariant: every column has exactly `len` slots.
///
/// Vectors optionally carry **partition metadata** — the fence-post
/// boundaries of the morsels they were produced across when a backend
/// executed the producing operator partition-parallel. The metadata is
/// advisory layout information (paper §2.3: parallelism is data-layout
/// controlled): it never affects the values, and two vectors differing
/// only in partition bounds compare equal.
#[derive(Debug, Clone)]
pub struct StructuredVector {
    len: usize,
    fields: Vec<(KeyPath, Column)>,
    /// Morsel fence posts (`starts` + final `end`) when produced
    /// partition-parallel; `None` for serially produced vectors.
    partitions: Option<std::sync::Arc<Vec<usize>>>,
}

impl PartialEq for StructuredVector {
    /// Value equality: slot count and fields only. Partition metadata is
    /// a layout annotation, not data — partition-parallel results must
    /// compare equal to their serial oracles.
    fn eq(&self, other: &StructuredVector) -> bool {
        self.len == other.len && self.fields == other.fields
    }
}

impl StructuredVector {
    /// A vector of `len` slots with no fields yet.
    pub fn with_len(len: usize) -> StructuredVector {
        StructuredVector {
            len,
            fields: Vec::new(),
            partitions: None,
        }
    }

    /// A single-field vector from a fully populated column.
    pub fn from_column(kp: impl Into<KeyPath>, col: Column) -> StructuredVector {
        let len = col.len();
        StructuredVector {
            len,
            fields: vec![(kp.into(), col)],
            partitions: None,
        }
    }

    /// A single-field vector from a plain buffer (no ε).
    pub fn from_buffer(kp: impl Into<KeyPath>, buf: Buffer) -> StructuredVector {
        Self::from_column(kp, Column::from_buffer(buf))
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of leaf fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// The flattened schema.
    pub fn schema(&self) -> Schema {
        Schema::from_fields(
            self.fields
                .iter()
                .map(|(kp, c)| (kp.clone(), c.ty()))
                .collect(),
        )
    }

    /// Iterate over `(keypath, column)` pairs.
    pub fn fields(&self) -> impl Iterator<Item = (&KeyPath, &Column)> {
        self.fields.iter().map(|(kp, c)| (kp, c))
    }

    /// Look up an exact leaf column.
    pub fn column(&self, kp: &KeyPath) -> Option<&Column> {
        self.fields.iter().find(|(f, _)| f == kp).map(|(_, c)| c)
    }

    /// Look up an exact leaf column, as an error on miss.
    pub fn column_req(&self, kp: &KeyPath, context: &str) -> Result<&Column> {
        self.column(kp).ok_or_else(|| VoodooError::UnknownKeyPath {
            keypath: kp.clone(),
            context: context.to_string(),
        })
    }

    /// Columns at or below `kp`, as `(relative path, column)` pairs.
    pub fn subtree(&self, kp: &KeyPath, context: &str) -> Result<Vec<(KeyPath, &Column)>> {
        let matches: Vec<_> = self
            .fields
            .iter()
            .filter(|(f, _)| f.starts_with(kp))
            .map(|(f, c)| (f.strip_prefix(kp).expect("starts_with checked"), c))
            .collect();
        if matches.is_empty() {
            Err(VoodooError::UnknownKeyPath {
                keypath: kp.clone(),
                context: context.to_string(),
            })
        } else {
            Ok(matches)
        }
    }

    /// Add (or replace) a leaf column; its length must equal the vector's.
    pub fn insert(&mut self, kp: impl Into<KeyPath>, col: Column) {
        assert_eq!(
            col.len(),
            self.len,
            "column length must match vector length"
        );
        let kp = kp.into();
        if let Some(slot) = self.fields.iter_mut().find(|(f, _)| *f == kp) {
            slot.1 = col;
        } else {
            self.fields.push((kp, col));
        }
    }

    /// Read the field at column index `field` of slot `row`; `None` for ε.
    pub fn scalar_at(&self, row: usize, field: usize) -> Option<ScalarValue> {
        self.fields[field].1.get(row)
    }

    /// Read a named field of slot `row`; `None` for ε or unknown field.
    pub fn value_at(&self, row: usize, kp: &KeyPath) -> Option<ScalarValue> {
        self.column(kp).and_then(|c| c.get(row))
    }

    /// The whole tuple at `row`, in field order (ε as `None`).
    pub fn tuple(&self, row: usize) -> Vec<Option<ScalarValue>> {
        self.fields.iter().map(|(_, c)| c.get(row)).collect()
    }

    /// Record the morsel boundaries this vector was produced across
    /// (fence posts: morsel starts plus the final end). Backends call
    /// this on partition-parallel outputs; it never changes the values.
    pub fn set_partition_bounds(&mut self, bounds: Vec<usize>) {
        self.partitions = Some(std::sync::Arc::new(bounds));
    }

    /// The morsel fence posts this vector was produced across, if it was
    /// produced partition-parallel.
    pub fn partition_bounds(&self) -> Option<&[usize]> {
        self.partitions.as_deref().map(|v| v.as_slice())
    }

    /// Number of morsels this vector was produced across (1 when it was
    /// produced serially).
    pub fn partition_count(&self) -> usize {
        self.partitions
            .as_deref()
            .map(|b| b.len().saturating_sub(1).max(1))
            .unwrap_or(1)
    }

    /// A convenience single-column accessor for 1-field vectors.
    pub fn sole_column(&self) -> Option<(&KeyPath, &Column)> {
        if self.fields.len() == 1 {
            Some((&self.fields[0].0, &self.fields[0].1))
        } else {
            None
        }
    }

    /// Rendered as a debugging table, ε printed as `ε` (Figure 7 style).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (kp, col) in &self.fields {
            write!(out, "{kp}\t").unwrap();
            for i in 0..self.len {
                match col.get(i) {
                    Some(v) => write!(out, "{v} ").unwrap(),
                    None => write!(out, "ε ").unwrap(),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_epsilon_roundtrip() {
        let mut c = Column::empties(ScalarType::I64, 3);
        assert_eq!(c.get(0), None);
        c.set(1, ScalarValue::I64(7));
        assert_eq!(c.get(1), Some(ScalarValue::I64(7)));
        c.clear(1);
        assert_eq!(c.get(1), None);
        assert!(!c.is_dense());
    }

    #[test]
    fn column_push_mixed() {
        let mut c = Column::from_buffer(Buffer::new(ScalarType::F32));
        c.push(Some(ScalarValue::F32(1.0)));
        c.push(None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.present().count(), 1);
    }

    #[test]
    fn vector_insert_and_schema() {
        let mut v = StructuredVector::with_len(2);
        v.insert(".fold", Column::from_buffer(Buffer::I64(vec![0, 1])));
        v.insert(".value", Column::from_buffer(Buffer::F32(vec![1.0, 2.0])));
        assert_eq!(v.field_count(), 2);
        assert_eq!(
            v.schema().field_type(&KeyPath::new(".value")),
            Some(ScalarType::F32)
        );
        assert_eq!(
            v.value_at(1, &KeyPath::new(".fold")),
            Some(ScalarValue::I64(1))
        );
    }

    #[test]
    fn vector_subtree_lookup() {
        let mut v = StructuredVector::with_len(1);
        v.insert(".in.a", Column::from_buffer(Buffer::I32(vec![1])));
        v.insert(".in.b", Column::from_buffer(Buffer::I32(vec![2])));
        v.insert(".out", Column::from_buffer(Buffer::I32(vec![3])));
        let sub = v.subtree(&KeyPath::new(".in"), "t").unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0].0, KeyPath::new("a"));
    }

    #[test]
    #[should_panic(expected = "column length must match")]
    fn insert_checks_length() {
        let mut v = StructuredVector::with_len(2);
        v.insert(".x", Column::from_buffer(Buffer::I32(vec![1])));
    }

    #[test]
    fn partition_bounds_are_metadata_not_data() {
        let mut a = StructuredVector::with_len(4);
        a.insert(".x", Column::from_buffer(Buffer::I64(vec![1, 2, 3, 4])));
        let mut b = a.clone();
        assert_eq!(a.partition_count(), 1);
        assert!(a.partition_bounds().is_none());
        b.set_partition_bounds(vec![0, 2, 4]);
        assert_eq!(b.partition_count(), 2);
        assert_eq!(b.partition_bounds(), Some(&[0, 2, 4][..]));
        // Bit-identical data ⇒ equal, regardless of how it was produced.
        assert_eq!(a, b);
    }

    #[test]
    fn render_shows_epsilon() {
        let mut v = StructuredVector::with_len(2);
        let mut c = Column::empties(ScalarType::I64, 2);
        c.set(0, ScalarValue::I64(9));
        v.insert(".sum", c);
        let s = v.render();
        assert!(s.contains('ε'));
        assert!(s.contains('9'));
    }
}
