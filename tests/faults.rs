//! Acceptance tests for deterministic fault injection (`voodoo-faults`)
//! through the serving front door: every injected fault — error, panic,
//! pool poisoning, latency spike, prepare failure — surfaces as exactly
//! one failed `Receipt`; the server, morsel pool, and plan cache recover
//! to a bit-identical steady state on all three backends; and one seed
//! yields one failure sequence (run the suite under a different
//! `VOODOO_FAULT_SEED` and the *schedule* changes, the guarantees don't).

use std::sync::Arc;
use std::time::{Duration, Instant};

use voodoo::core::{KeyPath, Program};
use voodoo::faults::{Fault, FaultPlan};
use voodoo::relational::{Engine, ServeConfig, ServeError, StatementSpec};
use voodoo::storage::Catalog;
use voodoo::tpch::queries::Query;

/// Seed for the scattered-fault tests; CI runs the suite twice with
/// different values to prove the harness (not one lucky schedule) holds.
fn fault_seed() -> u64 {
    std::env::var("VOODOO_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xfa0175)
}

/// A one-table engine whose statements sum the `t` column.
fn small_engine() -> Arc<Engine> {
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("t", &[1, 2, 3]);
    Arc::new(Engine::new(cat))
}

fn sum_spec(backend: &str) -> StatementSpec {
    let mut p = Program::new();
    let t = p.load("t");
    let total = p.fold_sum_global(t);
    p.ret(total);
    StatementSpec::program(p).on(backend)
}

fn sum_of(out: &voodoo::relational::StatementOutput) -> i64 {
    out.raw().returns[0]
        .value_at(0, &KeyPath::val())
        .map(|v| v.as_i64())
        .expect("sum return")
}

/// Wrap the engine's registered `backend` in `plan`.
fn wrap_backend(engine: &Arc<Engine>, backend: &str, plan: &FaultPlan) {
    let inner = engine.backend(backend).expect("backend registered");
    engine.register(backend, plan.wrap(inner));
}

// ---------------------------------------------------------------------
// Exactly one failed receipt per injected fault (seeded schedule)
// ---------------------------------------------------------------------

#[test]
fn every_scattered_fault_fails_exactly_one_receipt() {
    const N: u64 = 30;
    const FAULTS: usize = 5;
    let plan = FaultPlan::seeded(fault_seed())
        .scatter_execute(FAULTS, N, Fault::Error)
        .build();
    let engine = small_engine();
    wrap_backend(&engine, "interp", &plan);

    // One worker, FIFO within one session: the i-th submission is the
    // i-th execute call, so the failure set is exactly the schedule.
    let server = engine.serve(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(N as usize),
    );
    let session = server.session(1);
    let receipts: Vec<_> = (0..N)
        .map(|_| session.submit_wait(sum_spec("interp"), None).unwrap())
        .collect();
    let outcomes: Vec<bool> = receipts.into_iter().map(|r| r.wait().is_ok()).collect();
    server.shutdown();

    let scheduled: Vec<u64> = plan.execute_schedule().iter().map(|(i, _)| *i).collect();
    assert_eq!(scheduled.len(), FAULTS);
    for (i, ok) in outcomes.iter().enumerate() {
        assert_eq!(
            !*ok,
            scheduled.contains(&(i as u64)),
            "receipt {i}: failures must be exactly the injected schedule"
        );
    }
    assert_eq!(plan.log().len(), FAULTS, "every scheduled fault fired once");

    // Every admitted statement terminated — failed ones included.
    let s = session.stats();
    assert_eq!((s.submitted, s.served, s.shed, s.timed_out), (N, N, 0, 0));
}

// ---------------------------------------------------------------------
// Each fault kind is scoped to its own receipt; the pool keeps serving
// ---------------------------------------------------------------------

#[test]
fn fault_kinds_fail_their_receipt_and_only_theirs() {
    let plan = FaultPlan::build_with()
        .fault_execute(1, Fault::Error)
        .fault_execute(3, Fault::Panic)
        .fault_execute(5, Fault::PoolPoison)
        .fault_execute(7, Fault::Latency(Duration::from_millis(10)))
        .build();
    let engine = small_engine();
    // The compiled CPU backend so pool poisoning exercises the real
    // morsel pool underneath an executing statement.
    wrap_backend(&engine, "cpu", &plan);
    let server = engine.serve(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(16),
    );
    let session = server.session(1);

    let receipts: Vec<_> = (0..10)
        .map(|_| session.submit_wait(sum_spec("cpu"), None).unwrap())
        .collect();
    let outcomes: Vec<_> = receipts.into_iter().map(|r| r.wait()).collect();
    server.shutdown();

    for (i, out) in outcomes.iter().enumerate() {
        match (i, out) {
            (1, Err(ServeError::Engine(e))) => {
                assert!(e.to_string().contains("injected fault"), "got {e}")
            }
            (3, Err(ServeError::WorkerPanic(msg))) => {
                assert!(msg.contains("injected panic"), "got {msg}")
            }
            (5, Err(ServeError::WorkerPanic(msg))) => {
                assert!(msg.contains("injected pool poison"), "got {msg}")
            }
            (1 | 3 | 5, other) => panic!("receipt {i}: wrong failure {other:?}"),
            // Latency (call 7) perturbs timing only; everything else is
            // clean — and every success is the same bits.
            (_, Ok(out)) => assert_eq!(sum_of(out), 6),
            (_, Err(e)) => panic!("receipt {i} failed unexpectedly: {e}"),
        }
    }
    assert_eq!(plan.log().len(), 4);
    assert_eq!(engine.metrics().failures, 3, "latency is not a failure");
}

// ---------------------------------------------------------------------
// Post-fault steady state is bit-identical on all three backends
// ---------------------------------------------------------------------

#[test]
fn steady_state_after_faults_is_bit_identical_on_all_backends() {
    for backend in ["interp", "cpu", "gpu"] {
        let engine = Arc::new(Engine::tpch(0.002));
        let spec = StatementSpec::tpch(Query::Q6).on(backend);

        // Clean reference, served through the same front door.
        let reference = {
            let server = engine.serve(ServeConfig::default().with_workers(1));
            let rows = server
                .submit(spec.clone())
                .unwrap()
                .wait()
                .unwrap()
                .into_rows();
            server.shutdown();
            rows
        };

        // Inject an error then a panic, then let it run clean.
        let plan = FaultPlan::build_with()
            .fault_execute(0, Fault::Error)
            .fault_execute(1, Fault::Panic)
            .build();
        wrap_backend(&engine, backend, &plan);
        let server = engine.serve(ServeConfig::default().with_workers(1));
        let outcomes: Vec<_> = (0..5)
            .map(|_| server.submit(spec.clone()).unwrap().wait())
            .collect();
        server.shutdown();

        assert!(
            matches!(&outcomes[0], Err(ServeError::Engine(_))),
            "{backend}: injected error"
        );
        assert!(
            matches!(&outcomes[1], Err(ServeError::WorkerPanic(_))),
            "{backend}: injected panic"
        );
        for out in &outcomes[2..] {
            assert_eq!(
                out.as_ref().unwrap().rows(),
                &reference,
                "{backend}: post-fault results must be bit-identical to clean serving"
            );
        }
        assert_eq!(plan.log().len(), 2, "{backend}");
    }
}

// ---------------------------------------------------------------------
// Same seed, same sequence; a different seed is a different schedule
// ---------------------------------------------------------------------

#[test]
fn same_seed_yields_the_same_failure_sequence() {
    fn failed_indices(seed: u64) -> (Vec<(u64, Fault)>, Vec<usize>) {
        let plan = FaultPlan::seeded(seed)
            .scatter_execute(4, 20, Fault::Error)
            .build();
        let engine = small_engine();
        wrap_backend(&engine, "interp", &plan);
        let server = engine.serve(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(20),
        );
        let session = server.session(1);
        let receipts: Vec<_> = (0..20)
            .map(|_| session.submit_wait(sum_spec("interp"), None).unwrap())
            .collect();
        let failed = receipts
            .into_iter()
            .enumerate()
            .filter_map(|(i, r)| r.wait().is_err().then_some(i))
            .collect();
        server.shutdown();
        (plan.execute_schedule(), failed)
    }

    let seed = fault_seed();
    let (schedule_a, failed_a) = failed_indices(seed);
    let (schedule_b, failed_b) = failed_indices(seed);
    assert_eq!(schedule_a, schedule_b, "one seed, one schedule");
    assert_eq!(failed_a, failed_b, "one seed, one failure sequence");
    assert_eq!(failed_a.len(), 4);

    let (schedule_c, _) = failed_indices(seed.wrapping_add(1));
    assert_ne!(
        schedule_a, schedule_c,
        "a different seed reshapes the schedule"
    );
}

// ---------------------------------------------------------------------
// Prepare faults are transient: the plan cache never caches the error
// ---------------------------------------------------------------------

#[test]
fn prepare_fault_is_not_cached_by_the_plan_cache() {
    let plan = FaultPlan::fault_prepare(0, Fault::Error);
    let engine = small_engine();
    wrap_backend(&engine, "interp", &plan);
    let server = engine.serve(ServeConfig::default().with_workers(1));

    let first = server.submit(sum_spec("interp")).unwrap().wait();
    match first {
        Err(ServeError::Engine(e)) => assert!(e.to_string().contains("injected fault")),
        other => panic!("expected injected prepare error, got {other:?}"),
    }
    // The same statement again: the failed preparation was not cached,
    // prepare re-runs (clean this time) and the statement serves.
    let second = server.submit(sum_spec("interp")).unwrap().wait().unwrap();
    assert_eq!(sum_of(&second), 6);
    server.shutdown();
    assert_eq!(
        plan.prepare_calls(),
        2,
        "prepare retried, not served from cache"
    );
}

// ---------------------------------------------------------------------
// Catalog mutations raced against in-flight statements (hook seam)
// ---------------------------------------------------------------------

#[test]
fn catalog_mutation_races_are_snapshot_isolated() {
    let plan = FaultPlan::new();
    let engine = small_engine();
    {
        // Immediately before execute call 0 — after the statement pinned
        // its snapshot — another writer appends a row.
        let engine = Arc::clone(&engine);
        plan.on_execute(0, move |_| {
            assert!(engine.append_rows("t", &[vec![4]]));
        });
    }
    wrap_backend(&engine, "interp", &plan);
    let server = engine.serve(ServeConfig::default().with_workers(1));

    // The in-flight statement keeps its snapshot: sum is 6, not 10.
    let during = server.submit(sum_spec("interp")).unwrap().wait().unwrap();
    assert_eq!(sum_of(&during), 6, "snapshot isolation under racing append");
    // The next statement sees the published append.
    let after = server.submit(sum_spec("interp")).unwrap().wait().unwrap();
    assert_eq!(sum_of(&after), 10);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Latency spikes compose with deadline propagation
// ---------------------------------------------------------------------

#[test]
fn latency_spike_trips_propagated_deadlines_then_recovers() {
    let plan = FaultPlan::fault_execute(0, Fault::Latency(Duration::from_millis(60)));
    let engine = small_engine();
    wrap_backend(&engine, "interp", &plan);
    let server = engine.serve(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(4),
    );
    let session = server.session(1);

    // The spiked statement occupies the only worker for 60 ms; a
    // statement queued behind it with a 10 ms deadline must be dropped
    // at dequeue, not executed after the spike.
    let spiked = session.submit(sum_spec("interp")).unwrap();
    let doomed = session
        .submit_deadline(
            sum_spec("interp"),
            Instant::now() + Duration::from_millis(10),
        )
        .unwrap();
    assert_eq!(
        sum_of(&spiked.wait().unwrap()),
        6,
        "latency perturbs, not fails"
    );
    assert!(matches!(doomed.wait(), Err(ServeError::Timeout)));

    // Steady state: the spike is gone and service is clean.
    let after = session.submit(sum_spec("interp")).unwrap().wait().unwrap();
    assert_eq!(sum_of(&after), 6);
    server.shutdown();

    let s = session.stats();
    assert_eq!((s.served, s.timed_out), (2, 1));
    assert_eq!(engine.metrics().deadline_drops, 1);
}
