//! Load-time auxiliary tables.
//!
//! MonetDB evaluates string predicates (`LIKE '%green%'`) once against the
//! dictionary, not once per row; the resulting per-code flag vector is an
//! ordinary column. [`prepare()`] stages those flag vectors (plus a
//! day→year lookup for `extract(year ...)`) as single-column tables that
//! Voodoo plans `Gather` from — keeping the algebra free of string
//! operations, exactly as in the paper's MonetDB integration.

use voodoo_storage::Catalog;
use voodoo_tpch::dates::year_of;
use voodoo_tpch::queries::params;

use voodoo_baselines::cols::codes_where;

/// Names of the staged auxiliary tables.
pub mod aux {
    /// Day offset → calendar year.
    pub const YEAR_OF_DAY: &str = "__aux_year_of_day";
    /// p_name dictionary code → contains "green" (Q9).
    pub const NAME_GREEN: &str = "__aux_p_name_green";
    /// p_name dictionary code → contains "forest" (Q20).
    pub const NAME_FOREST: &str = "__aux_p_name_forest";
    /// p_type dictionary code → starts with "PROMO" (Q14).
    pub const TYPE_PROMO: &str = "__aux_p_type_promo";
    /// p_container dictionary code → matches Q19 triple `i`.
    pub fn container(i: usize) -> String {
        format!("__aux_p_container_q19_{i}")
    }
}

fn flags_to_i64(flags: &[bool]) -> Vec<i64> {
    flags.iter().map(|&b| b as i64).collect()
}

/// Stage every auxiliary table the Voodoo plans use. Idempotent.
pub fn prepare(cat: &mut Catalog) {
    // Day → year lookup covering the full TPC-H date range (+ slack).
    let max_day = voodoo_tpch::dates::date(1999, 12, 31);
    let years: Vec<i64> = (0..=max_day).map(year_of).collect();
    cat.put_i64_column(aux::YEAR_OF_DAY, &years);

    let green = codes_where(cat, "part", "p_name", |s| s.contains(params::q9_color()));
    cat.put_i64_column(aux::NAME_GREEN, &flags_to_i64(&green));

    let forest = codes_where(cat, "part", "p_name", |s| s.contains(params::q20().0));
    cat.put_i64_column(aux::NAME_FOREST, &flags_to_i64(&forest));

    let promo = codes_where(cat, "part", "p_type", |s| s.starts_with("PROMO"));
    cat.put_i64_column(aux::TYPE_PROMO, &flags_to_i64(&promo));

    for (i, (_, kind, _)) in params::q19().iter().enumerate() {
        let ok = codes_where(cat, "part", "p_container", |s| s.ends_with(kind));
        cat.put_i64_column(&aux::container(i), &flags_to_i64(&ok));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_stages_all_aux_tables() {
        let mut cat = voodoo_tpch::generate(0.001);
        prepare(&mut cat);
        assert!(cat.table(aux::YEAR_OF_DAY).is_some());
        assert!(cat.table(aux::NAME_GREEN).is_some());
        assert!(cat.table(aux::NAME_FOREST).is_some());
        assert!(cat.table(aux::TYPE_PROMO).is_some());
        for i in 0..3 {
            assert!(cat.table(&aux::container(i)).is_some());
        }
        // Year lookup is correct at known boundaries.
        let y = cat.table(aux::YEAR_OF_DAY).unwrap().column("val").unwrap();
        assert_eq!(y.data.get(0).unwrap().as_i64(), 1992);
        let d96 = voodoo_tpch::dates::date(1996, 6, 1) as usize;
        assert_eq!(y.data.get(d96).unwrap().as_i64(), 1996);
    }
}
