//! Effect analysis (pass 3): the exact table read/write footprint of a
//! program.
//!
//! Unlike [`Program::table_deps`] — which lists every `Load`/`Persist`
//! name syntactically, dead or alive — the effect analysis first computes
//! *liveness* (statements reachable from the returns or from a
//! side-effecting `Persist`) and only then collects table names. The
//! result is the exact set of tables whose state can influence (reads)
//! or be influenced by (writes) an execution, which is what plan-cache
//! freshness and view change capture must be keyed on.

use voodoo_core::{Op, Program};

/// The exact table footprint of a program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Effects {
    /// Tables a live `Load` reads, sorted and deduplicated.
    pub reads: Vec<String>,
    /// Tables a `Persist` writes, sorted and deduplicated.
    pub writes: Vec<String>,
}

impl Effects {
    /// The union of reads and writes, sorted and deduplicated — the
    /// table set a cached plan's freshness must be keyed on.
    pub fn tables(&self) -> Vec<&str> {
        let mut all: Vec<&str> = self
            .reads
            .iter()
            .chain(self.writes.iter())
            .map(|s| s.as_str())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Whether the program touches no persistent state at all.
    pub fn is_pure(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// Which statements can influence an execution's observable outcome:
/// everything reachable backwards from a return or from a side-effecting
/// statement (`Persist` executes unconditionally on every backend).
pub fn live_statements(program: &Program) -> Vec<bool> {
    let n = program.len();
    let mut live = vec![false; n];
    let mut work: Vec<usize> = Vec::new();
    for r in program.returns() {
        if r.index() < n && !live[r.index()] {
            live[r.index()] = true;
            work.push(r.index());
        }
    }
    for (i, stmt) in program.stmts().iter().enumerate() {
        if stmt.op.has_side_effect() && !live[i] {
            live[i] = true;
            work.push(i);
        }
    }
    while let Some(i) = work.pop() {
        for input in program.stmts()[i].op.inputs() {
            let j = input.index();
            if j < i && !live[j] {
                live[j] = true;
                work.push(j);
            }
        }
    }
    live
}

/// Compute the exact per-program table read/write sets.
///
/// Pure in the program (no catalog needed), so it is cheap enough to run
/// on every plan-cache lookup.
pub fn effects(program: &Program) -> Effects {
    let live = live_statements(program);
    let mut reads: Vec<String> = Vec::new();
    let mut writes: Vec<String> = Vec::new();
    for (i, stmt) in program.stmts().iter().enumerate() {
        if !live[i] {
            continue;
        }
        match &stmt.op {
            Op::Load { name } => reads.push(name.clone()),
            Op::Persist { name, .. } => writes.push(name.clone()),
            _ => {}
        }
    }
    reads.sort_unstable();
    reads.dedup();
    writes.sort_unstable();
    writes.dedup();
    Effects { reads, writes }
}

/// The owned table footprint of a program: every table a live statement
/// reads *or* writes, sorted and deduplicated. This is the planning
/// entry point for scatter routing (`voodoo-relational`'s shard layer):
/// the set of tables a statement touches is exactly the set of shards
/// that must contribute data, so the analyzer — not a heuristic — decides
/// which shards a cross-shard statement fans across.
pub fn read_set(program: &Program) -> Vec<String> {
    let fx = effects(program);
    let mut all = fx.reads;
    all.extend(fx.writes);
    all.sort_unstable();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_loads_only() {
        let mut p = Program::new();
        let a = p.load("used");
        let _dead = p.load("dead");
        let b = p.add_const(a, 1i64);
        p.ret(b);
        let fx = effects(&p);
        assert_eq!(fx.reads, vec!["used".to_string()]);
        assert!(fx.writes.is_empty());
        // The syntactic heuristic over-approximates: it includes the dead
        // load.
        assert_eq!(p.table_deps(), vec!["dead", "used"]);
    }

    #[test]
    fn persist_roots_liveness() {
        let mut p = Program::new();
        let a = p.load("src");
        let b = p.mul_const(a, 2i64);
        p.persist("dst", b);
        let c = p.constant(1i64);
        p.ret(c);
        let fx = effects(&p);
        // `src` feeds only the persist, but the persist executes
        // unconditionally — so `src` is read.
        assert_eq!(fx.reads, vec!["src".to_string()]);
        assert_eq!(fx.writes, vec!["dst".to_string()]);
        assert_eq!(fx.tables(), vec!["dst", "src"]);
    }

    #[test]
    fn reads_sorted_and_deduplicated() {
        let mut p = Program::new();
        let a = p.load("b_table");
        let b = p.load("a_table");
        let c = p.load("b_table");
        let s = p.add(a, b);
        let s2 = p.add(s, c);
        p.ret(s2);
        assert_eq!(
            effects(&p).reads,
            vec!["a_table".to_string(), "b_table".to_string()]
        );
    }
}
