//! Candidate plans: a concrete Voodoo program plus the executor flags
//! that accompany it.

use voodoo_algos::join::{FkJoinStrategy, LayoutStrategy};
use voodoo_algos::selection::SelectionStrategy;
use voodoo_algos::FoldStrategy;
use voodoo_core::Program;

/// The physical decision a candidate embodies — one arm per workload
/// family, mirroring the paper's microbenchmark design spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Figure 15 family: selection strategy plus the executor predication
    /// flag for position emission.
    Selection {
        /// Program shape.
        strategy: SelectionStrategy,
        /// Branch-free position emission (`ExecOptions::predicated_select`).
        predicated: bool,
    },
    /// Figure 16 family.
    FkJoin {
        /// Predicate-handling variant.
        strategy: FkJoinStrategy,
    },
    /// Figure 14 family.
    Lookup {
        /// Traversal/layout variant.
        strategy: LayoutStrategy,
    },
    /// Figure 3/4 family.
    Fold {
        /// Parallelism shape of the fold.
        strategy: FoldStrategy,
    },
}

impl Decision {
    /// Human-readable label (used in reports and tests).
    pub fn label(&self) -> String {
        match self {
            Decision::Selection {
                strategy,
                predicated,
            } => {
                let base = match strategy {
                    SelectionStrategy::Plain => "plain".to_string(),
                    SelectionStrategy::PredicatedAggregation => "predicated-agg".to_string(),
                    SelectionStrategy::Vectorized { chunk } => format!("vectorized({chunk})"),
                };
                if *predicated {
                    format!("{base}+branchfree")
                } else {
                    format!("{base}+branching")
                }
            }
            Decision::FkJoin { strategy } => strategy.label().to_string(),
            Decision::Lookup { strategy } => strategy.label().to_string(),
            Decision::Fold { strategy } => match strategy {
                FoldStrategy::Global => "global".to_string(),
                FoldStrategy::Partitions { size } => format!("partitions({size})"),
                FoldStrategy::Lanes { lanes } => format!("lanes({lanes})"),
            },
        }
    }
}

/// A fully specified physical plan: the program plus executor flags.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// What was decided.
    pub decision: Decision,
    /// The generated Voodoo program.
    pub program: Program,
    /// Whether the executor should emit branch-free position lists.
    pub predicated_select: bool,
}

impl Candidate {
    /// Candidate with default (branching) execution flags.
    pub fn new(decision: Decision, program: Program) -> Candidate {
        Candidate {
            decision,
            program,
            predicated_select: false,
        }
    }

    /// Candidate with branch-free position emission.
    pub fn predicated(decision: Decision, program: Program) -> Candidate {
        Candidate {
            decision,
            program,
            predicated_select: true,
        }
    }
}
