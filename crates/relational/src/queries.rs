//! Voodoo plans for the paper's TPC-H query subset.
//!
//! Each query lowers to one (for Q20: two) Voodoo program(s) built with
//! [`crate::builder::QB`]. The plans follow the paper's §4/§5.2 planner:
//!
//! * joins are positional gathers over dense key domains (identity
//!   hashing sized by min/max metadata),
//! * selections are boolean masks multiplied into aggregated values (the
//!   default, branch-free plan shape; §5.3's tuning flags change *how*
//!   the backend executes them, not the plan),
//! * group-bys are the `Partition → Scatter → Fold` pattern (Figure 10),
//!   which the compiled backend executes as a virtual scatter (§3.1.3),
//! * string predicates read load-time dictionary flag tables
//!   ([`crate::prepare()`]), `extract(year)` reads the day→year table,
//! * the rare non-vectorizable finishing steps (Q11's threshold against
//!   the grand total, Q15's arg-max, Q20's staging of a subquery result)
//!   happen host-side on the (small) grouped outputs, like MonetDB's
//!   multi-statement plans.

use voodoo_baselines::cols::{canon_ranks, code_of, len_of};
use voodoo_baselines::hyper::{nation_key, region_key};
use voodoo_core::{BinOp, KeyPath, Program, Result};
use voodoo_interp::ExecOutput;
use voodoo_storage::{Catalog, Table};
use voodoo_tpch::queries::{params, Query, QueryResult};

use crate::builder::{extract_grouped, extract_scalar, QB};
use crate::prepare::aux;

/// An executor callback: runs one program against a catalog.
pub type Exec<'a> = dyn FnMut(&Program, &Catalog) -> Result<ExecOutput> + 'a;

/// Build and run the Voodoo plan for one query.
pub fn run_query(cat: &Catalog, q: Query, exec: &mut Exec<'_>) -> Result<QueryResult> {
    match q {
        Query::Q1 => q1(cat, exec),
        Query::Q4 => q4(cat, exec),
        Query::Q5 => q5(cat, exec),
        Query::Q6 => q6(cat, exec),
        Query::Q7 => q7(cat, exec),
        Query::Q8 => q8(cat, exec),
        Query::Q9 => q9(cat, exec),
        Query::Q10 => q10(cat, exec),
        Query::Q11 => q11(cat, exec),
        Query::Q12 => q12(cat, exec),
        Query::Q14 => q14(cat, exec),
        Query::Q15 => q15(cat, exec),
        Query::Q19 => q19(cat, exec),
        Query::Q20 => q20(cat, exec),
    }
}

/// The exact catalog footprint of one query's plan: every table the
/// builder reads, host-side metadata included (`canon_ranks` /
/// `code_of` / `nation_key` dictionaries and the [`crate::prepare()`]
/// auxiliary flag tables), sorted. This is the static analogue of
/// `voodoo_verify`'s effects pass for the planner frontend — the TPC-H
/// plans are built host-side *before* a program exists to analyze, so
/// the shard router ([`crate::shard`]) plans its scatter set from this
/// table instead. Q20's `__q20_shipped` staging table is deliberately
/// absent: the plan creates it itself in a private scratch catalog.
///
/// Pinned against the analyzer in this module's tests: for every query,
/// the union of the effects-pass read sets of its executed programs is
/// a subset of this list.
pub fn query_tables(q: Query) -> &'static [&'static str] {
    match q {
        Query::Q1 | Query::Q6 => &["lineitem"],
        Query::Q4 | Query::Q12 => &["lineitem", "orders"],
        Query::Q5 => &[
            "customer", "lineitem", "nation", "orders", "region", "supplier",
        ],
        Query::Q7 => &["customer", "lineitem", "nation", "orders", "supplier"],
        Query::Q8 => &[
            "customer", "lineitem", "nation", "orders", "part", "region", "supplier",
        ],
        Query::Q9 => &[
            aux::NAME_GREEN,
            aux::YEAR_OF_DAY,
            "lineitem",
            "orders",
            "part",
            "partsupp",
            "supplier",
        ],
        Query::Q10 => &["customer", "lineitem", "orders"],
        Query::Q11 => &["nation", "part", "partsupp", "supplier"],
        Query::Q14 => &[aux::TYPE_PROMO, "lineitem", "part"],
        Query::Q15 => &["lineitem", "supplier"],
        Query::Q19 => &[
            "__aux_p_container_q19_0",
            "__aux_p_container_q19_1",
            "__aux_p_container_q19_2",
            "lineitem",
            "part",
        ],
        Query::Q20 => &[
            aux::NAME_FOREST,
            "lineitem",
            "nation",
            "part",
            "partsupp",
            "supplier",
        ],
    }
}

fn q1(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let rf_rank = canon_ranks(cat, "lineitem", "l_returnflag");
    let ls_rank = canon_ranks(cat, "lineitem", "l_linestatus");
    let nls = ls_rank.len().max(1) as i64;
    let domain = rf_rank.len().max(1) * nls as usize;

    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let m = qb.bin_c(BinOp::LessEquals, li, ".l_shipdate", params::q1_cutoff());
    let key_hi = qb.bin_c(BinOp::Multiply, li, ".l_returnflag", nls);
    let key = qb.p.binary_kp(
        BinOp::Add,
        key_hi,
        KeyPath::val(),
        li,
        KeyPath::new(".l_linestatus"),
        KeyPath::val(),
    );
    let rev = qb.revenue(li, ".l_extendedprice", ".l_discount");
    // charge = rev * (100 + tax)
    let t100 = qb.bin_c(BinOp::Add, li, ".l_tax", 100);
    let charge = qb.p.binary(BinOp::Multiply, rev, t100);
    let qty =
        qb.p.project(li, KeyPath::new(".l_quantity"), KeyPath::val());
    let ext =
        qb.p.project(li, KeyPath::new(".l_extendedprice"), KeyPath::val());
    let mqty = qb.masked(qty, m);
    let mext = qb.masked(ext, m);
    let mrev = qb.masked(rev, m);
    let mcharge = qb.masked(charge, m);
    let (kf, sums) = qb.group_sums(key, domain, &[mqty, mext, mrev, mcharge, m]);
    qb.ret(kf);
    for s in &sums {
        qb.ret(*s);
    }
    let out = exec(&qb.finish(), cat)?;
    let rows = extract_grouped(
        &out.returns[0],
        &[
            &out.returns[1],
            &out.returns[2],
            &out.returns[3],
            &out.returns[4],
            &out.returns[5],
        ],
    );
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[4] > 0)
            .map(|(k, v)| {
                vec![
                    rf_rank[(k / nls) as usize],
                    ls_rank[(k % nls) as usize],
                    v[0],
                    v[1],
                    v[2],
                    v[3],
                    v[4],
                ]
            })
            .collect(),
    ))
}

fn q4(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (lo, hi) = params::q4_window();
    let prio_rank = canon_ranks(cat, "orders", "o_orderpriority");
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let orders = qb.table("orders");
    // Semijoin: scatter a 1 to each order that has a qualifying lineitem
    // (non-qualifying rows scatter out of bounds and are dropped).
    let qual = qb.bin(BinOp::Less, li, ".l_commitdate", li, ".l_receiptdate");
    let okp1 = qb.bin_c(BinOp::Add, li, ".l_orderkey", 1);
    let pos_raw = qb.p.binary(BinOp::Multiply, okp1, qual);
    let pos = qb.p.add_const(pos_raw, -1i64);
    let ones = qb.p.constant_like(1i64, li);
    let flags = qb.p.scatter(ones, orders, pos);
    // Orders side: date window × (ε-padded) exists flag.
    let datem = qb.in_range(orders, ".o_orderdate", lo, hi);
    let ind = qb.masked(flags, datem);
    let key =
        qb.p.project(orders, KeyPath::new(".o_orderpriority"), KeyPath::val());
    let (kf, sums) = qb.group_sums(key, prio_rank.len().max(1), &[ind]);
    qb.ret(kf);
    qb.ret(sums[0]);
    let out = exec(&qb.finish(), cat)?;
    let rows = extract_grouped(&out.returns[0], &[&out.returns[1]]);
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[0] > 0)
            .map(|(k, v)| vec![prio_rank[k as usize], v[0]])
            .collect(),
    ))
}

fn q5(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (region, lo, hi) = params::q5();
    let rk = region_key(cat, region);
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let orders = qb.table("orders");
    let customer = qb.table("customer");
    let supplier = qb.table("supplier");
    let nation = qb.table("nation");
    let ord = qb.fk_gather(orders, li, ".l_orderkey");
    let supp = qb.fk_gather(supplier, li, ".l_suppkey");
    let cust = qb.fk_gather(customer, ord, ".o_custkey");
    let nat = qb.fk_gather(nation, supp, ".s_nationkey");
    let datem = qb.in_range(ord, ".o_orderdate", lo, hi);
    let same = qb.bin(BinOp::Equals, supp, ".s_nationkey", cust, ".c_nationkey");
    let inreg = qb.eq_c(nat, ".n_regionkey", rk);
    let m = qb.and(&[datem, same, inreg]);
    let rev = qb.revenue(li, ".l_extendedprice", ".l_discount");
    let mrev = qb.masked(rev, m);
    let key =
        qb.p.project(supp, KeyPath::new(".s_nationkey"), KeyPath::val());
    let (kf, sums) = qb.group_sums(key, 25, &[mrev]);
    qb.ret(kf);
    qb.ret(sums[0]);
    let out = exec(&qb.finish(), cat)?;
    let rows = extract_grouped(&out.returns[0], &[&out.returns[1]]);
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[0] != 0)
            .map(|(k, v)| vec![k, v[0]])
            .collect(),
    ))
}

fn q6(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (lo, hi, dlo, dhi, qmax) = params::q6();
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let datem = qb.in_range(li, ".l_shipdate", lo, hi);
    let discm = qb.in_range(li, ".l_discount", dlo, dhi + 1);
    let qtym = qb.bin_c(BinOp::Less, li, ".l_quantity", qmax);
    let m = qb.and(&[datem, discm, qtym]);
    let prod = qb.bin(BinOp::Multiply, li, ".l_extendedprice", li, ".l_discount");
    let masked = qb.masked(prod, m);
    let s = qb.global_sum(masked);
    qb.ret(s);
    let out = exec(&qb.finish(), cat)?;
    Ok(QueryResult::new(vec![vec![extract_scalar(
        &out.returns[0],
    )]]))
}

fn q7(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (na, nb, lo, hi) = params::q7();
    let (ka, kb) = (nation_key(cat, na), nation_key(cat, nb));
    let ys96 = voodoo_tpch::dates::year_start(1996);
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let orders = qb.table("orders");
    let customer = qb.table("customer");
    let supplier = qb.table("supplier");
    let ord = qb.fk_gather(orders, li, ".l_orderkey");
    let supp = qb.fk_gather(supplier, li, ".l_suppkey");
    let cust = qb.fk_gather(customer, ord, ".o_custkey");
    let datem = qb.in_range(li, ".l_shipdate", lo, hi + 1);
    let s_a = qb.eq_c(supp, ".s_nationkey", ka);
    let s_b = qb.eq_c(supp, ".s_nationkey", kb);
    let c_a = qb.eq_c(cust, ".c_nationkey", ka);
    let c_b = qb.eq_c(cust, ".c_nationkey", kb);
    let ab = qb.and(&[s_a, c_b]);
    let ba = qb.and(&[s_b, c_a]);
    let pair = qb.or(&[ab, ba]);
    let m = qb.and(&[datem, pair]);
    // year ∈ {1995, 1996}: key = is1996 + 2·is_ba (direction), domain 4.
    let is96 = qb.bin_c(BinOp::GreaterEquals, li, ".l_shipdate", ys96);
    let dir2 = qb.p.mul_const(ba, 2i64);
    let key_raw = qb.p.add(is96, dir2);
    // Force masked-out rows into bucket 0 so keys stay in-domain.
    let key = qb.masked(key_raw, m);
    let rev = qb.revenue(li, ".l_extendedprice", ".l_discount");
    let mrev = qb.masked(rev, m);
    let mcount = qb.p.project(m, KeyPath::val(), KeyPath::val());
    let (kf, sums) = qb.group_sums(key, 4, &[mrev, mcount]);
    qb.ret(kf);
    qb.ret(sums[0]);
    qb.ret(sums[1]);
    let out = exec(&qb.finish(), cat)?;
    let rows = extract_grouped(&out.returns[0], &[&out.returns[1], &out.returns[2]]);
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[1] > 0 && v[0] != 0)
            .map(|(k, v)| {
                let year = 1995 + (k & 1);
                let (s, c) = if k & 2 == 0 { (ka, kb) } else { (kb, ka) };
                vec![s, c, year, v[0]]
            })
            .collect(),
    ))
}

fn q8(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (nation, region, ptype, lo, hi) = params::q8();
    let bk = nation_key(cat, nation);
    let rk = region_key(cat, region);
    let tcode = code_of(cat, "part", "p_type", ptype);
    let ys96 = voodoo_tpch::dates::year_start(1996);
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let orders = qb.table("orders");
    let customer = qb.table("customer");
    let supplier = qb.table("supplier");
    let nationt = qb.table("nation");
    let part = qb.table("part");
    let p = qb.fk_gather(part, li, ".l_partkey");
    let ord = qb.fk_gather(orders, li, ".l_orderkey");
    let supp = qb.fk_gather(supplier, li, ".l_suppkey");
    let cust = qb.fk_gather(customer, ord, ".o_custkey");
    let cnat = qb.fk_gather(nationt, cust, ".c_nationkey");
    let typem = qb.eq_c(p, ".p_type", tcode);
    let datem = qb.in_range(ord, ".o_orderdate", lo, hi + 1);
    let regm = qb.eq_c(cnat, ".n_regionkey", rk);
    let m = qb.and(&[typem, datem, regm]);
    let isb = qb.eq_c(supp, ".s_nationkey", bk);
    let rev = qb.revenue(li, ".l_extendedprice", ".l_discount");
    let den = qb.masked(rev, m);
    let num = qb.masked(den, isb);
    let is96 = qb.bin_c(BinOp::GreaterEquals, ord, ".o_orderdate", ys96);
    let key = qb.masked(is96, m); // {0,1} within window; masked rows → 0
    let (kf, sums) = qb.group_sums(key, 2, &[num, den]);
    qb.ret(kf);
    qb.ret(sums[0]);
    qb.ret(sums[1]);
    let out = exec(&qb.finish(), cat)?;
    let rows = extract_grouped(&out.returns[0], &[&out.returns[1], &out.returns[2]]);
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[1] != 0)
            .map(|(k, v)| vec![1995 + k, v[0], v[1]])
            .collect(),
    ))
}

fn q9(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let n_supp = len_of(cat, "supplier") as i64;
    let stride = (n_supp / 4).max(1);
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let orders = qb.table("orders");
    let supplier = qb.table("supplier");
    let part = qb.table("part");
    let partsupp = qb.table("partsupp");
    let greens = qb.table(aux::NAME_GREEN);
    let years = qb.table(aux::YEAR_OF_DAY);

    let p = qb.fk_gather(part, li, ".l_partkey");
    let green = qb.fk_gather(greens, p, ".p_name");
    // partsupp row: partkey*4 + ((suppkey − partkey + n) mod n) / stride.
    let diff = qb.bin(BinOp::Subtract, li, ".l_suppkey", li, ".l_partkey");
    let rem = qb.p.mod_const(diff, n_supp);
    let shifted = qb.p.add_const(rem, n_supp);
    let modn = qb.p.mod_const(shifted, n_supp);
    let j = qb.p.div_const(modn, stride);
    let pk4 = qb.bin_c(BinOp::Multiply, li, ".l_partkey", 4);
    let psidx = qb.p.add(pk4, j);
    let ps = qb.p.gather(partsupp, psidx);
    let supp = qb.fk_gather(supplier, li, ".l_suppkey");
    let ord = qb.fk_gather(orders, li, ".l_orderkey");
    let year = qb.fk_gather(years, ord, ".o_orderdate");

    let rev = qb.revenue(li, ".l_extendedprice", ".l_discount");
    let costq_raw = qb.bin(BinOp::Multiply, ps, ".ps_supplycost", li, ".l_quantity");
    let costq = qb.p.mul_const(costq_raw, 100i64);
    let amount = qb.p.binary(BinOp::Subtract, rev, costq);
    let m = qb.p.project(green, KeyPath::val(), KeyPath::val());
    let mamount = qb.masked(amount, m);
    // key = nation·8 + (year − 1992), domain 25·8; masked rows → bucket 0.
    let n8 = qb.bin_c(BinOp::Multiply, supp, ".s_nationkey", 8);
    let y0 = qb.bin_c(BinOp::Subtract, year, ".val", 1992);
    let key_raw = qb.p.add(n8, y0);
    let key = qb.masked(key_raw, m);
    let mcount = qb.p.project(m, KeyPath::val(), KeyPath::val());
    let (kf, sums) = qb.group_sums(key, 25 * 8, &[mamount, mcount]);
    qb.ret(kf);
    qb.ret(sums[0]);
    qb.ret(sums[1]);
    let out = exec(&qb.finish(), cat)?;
    let rows = extract_grouped(&out.returns[0], &[&out.returns[1], &out.returns[2]]);
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[1] > 0)
            .map(|(k, v)| vec![k / 8, 1992 + k % 8, v[0]])
            .collect(),
    ))
}

fn q10(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (lo, hi) = params::q10_window();
    let rcode = code_of(cat, "lineitem", "l_returnflag", "R");
    let n_cust = len_of(cat, "customer");
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let orders = qb.table("orders");
    let ord = qb.fk_gather(orders, li, ".l_orderkey");
    let isr = qb.eq_c(li, ".l_returnflag", rcode);
    let datem = qb.in_range(ord, ".o_orderdate", lo, hi);
    let m = qb.and(&[isr, datem]);
    let rev = qb.revenue(li, ".l_extendedprice", ".l_discount");
    let mrev = qb.masked(rev, m);
    let key_raw =
        qb.p.project(ord, KeyPath::new(".o_custkey"), KeyPath::val());
    let key = qb.masked(key_raw, m);
    let (kf, sums) = qb.group_sums(key, n_cust, &[mrev]);
    qb.ret(kf);
    qb.ret(sums[0]);
    let out = exec(&qb.finish(), cat)?;
    let rows = extract_grouped(&out.returns[0], &[&out.returns[1]]);
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[0] != 0)
            .map(|(k, v)| vec![k, v[0]])
            .collect(),
    ))
}

fn q11(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (nation, frac_den) = params::q11();
    let nk = nation_key(cat, nation);
    let n_part = len_of(cat, "part");
    let mut qb = QB::new();
    let ps = qb.table("partsupp");
    let supplier = qb.table("supplier");
    let supp = qb.fk_gather(supplier, ps, ".ps_suppkey");
    let m = qb.eq_c(supp, ".s_nationkey", nk);
    let value = qb.bin(BinOp::Multiply, ps, ".ps_supplycost", ps, ".ps_availqty");
    let mvalue = qb.masked(value, m);
    let total = qb.global_sum(mvalue);
    let key =
        qb.p.project(ps, KeyPath::new(".ps_partkey"), KeyPath::val());
    let (kf, sums) = qb.group_sums(key, n_part, &[mvalue]);
    qb.ret(kf);
    qb.ret(sums[0]);
    qb.ret(total);
    let out = exec(&qb.finish(), cat)?;
    let total = extract_scalar(&out.returns[2]);
    let rows = extract_grouped(&out.returns[0], &[&out.returns[1]]);
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[0] * frac_den > total)
            .map(|(k, v)| vec![k, v[0]])
            .collect(),
    ))
}

fn q12(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (m1, m2, lo, hi) = params::q12();
    let c1 = code_of(cat, "lineitem", "l_shipmode", m1);
    let c2 = code_of(cat, "lineitem", "l_shipmode", m2);
    let urgent = code_of(cat, "orders", "o_orderpriority", "1-URGENT");
    let high = code_of(cat, "orders", "o_orderpriority", "2-HIGH");
    let mode_rank = canon_ranks(cat, "lineitem", "l_shipmode");
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let orders = qb.table("orders");
    let ord = qb.fk_gather(orders, li, ".l_orderkey");
    let is1 = qb.eq_c(li, ".l_shipmode", c1);
    let is2 = qb.eq_c(li, ".l_shipmode", c2);
    let modem = qb.or(&[is1, is2]);
    let recm = qb.in_range(li, ".l_receiptdate", lo, hi);
    let cr = qb.bin(BinOp::Less, li, ".l_commitdate", li, ".l_receiptdate");
    let sc = qb.bin(BinOp::Less, li, ".l_shipdate", li, ".l_commitdate");
    let m = qb.and(&[modem, recm, cr, sc]);
    let isu = qb.eq_c(ord, ".o_orderpriority", urgent);
    let ish = qb.eq_c(ord, ".o_orderpriority", high);
    let ishigh = qb.or(&[isu, ish]);
    let mh = qb.and(&[m, ishigh]);
    let high_cnt = qb.p.project(mh, KeyPath::val(), KeyPath::val());
    let ml = qb.p.binary(BinOp::Subtract, m, mh);
    let key_raw =
        qb.p.project(li, KeyPath::new(".l_shipmode"), KeyPath::val());
    let key = qb.masked(key_raw, m);
    let mcount = qb.p.project(m, KeyPath::val(), KeyPath::val());
    let (kf, sums) = qb.group_sums(key, mode_rank.len().max(1), &[high_cnt, ml, mcount]);
    qb.ret(kf);
    for s in &sums {
        qb.ret(*s);
    }
    let out = exec(&qb.finish(), cat)?;
    let rows = extract_grouped(
        &out.returns[0],
        &[&out.returns[1], &out.returns[2], &out.returns[3]],
    );
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[2] > 0)
            .map(|(k, v)| vec![mode_rank[k as usize], v[0], v[1]])
            .collect(),
    ))
}

fn q14(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (lo, hi) = params::q14_window();
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let part = qb.table("part");
    let promo = qb.table(aux::TYPE_PROMO);
    let p = qb.fk_gather(part, li, ".l_partkey");
    let isp = qb.fk_gather(promo, p, ".p_type");
    let m = qb.in_range(li, ".l_shipdate", lo, hi);
    let rev = qb.revenue(li, ".l_extendedprice", ".l_discount");
    let mrev = qb.masked(rev, m);
    let ispv = qb.p.project(isp, KeyPath::val(), KeyPath::val());
    let prev = qb.masked(mrev, ispv);
    let total = qb.global_sum(mrev);
    let promo_rev = qb.global_sum(prev);
    qb.ret(promo_rev);
    qb.ret(total);
    let out = exec(&qb.finish(), cat)?;
    Ok(QueryResult::new(vec![vec![
        extract_scalar(&out.returns[0]),
        extract_scalar(&out.returns[1]),
    ]]))
}

fn q15(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (lo, hi) = params::q15_window();
    let n_supp = len_of(cat, "supplier");
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let m = qb.in_range(li, ".l_shipdate", lo, hi);
    let rev = qb.revenue(li, ".l_extendedprice", ".l_discount");
    let mrev = qb.masked(rev, m);
    let key_raw = qb.p.project(li, KeyPath::new(".l_suppkey"), KeyPath::val());
    let key = qb.masked(key_raw, m);
    let (kf, sums) = qb.group_sums(key, n_supp, &[mrev]);
    qb.ret(kf);
    qb.ret(sums[0]);
    let out = exec(&qb.finish(), cat)?;
    let rows = extract_grouped(&out.returns[0], &[&out.returns[1]]);
    // Finishing arg-max over the (small) grouped output.
    let max = rows.iter().map(|(_, v)| v[0]).max().unwrap_or(0);
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[0] == max && v[0] > 0)
            .map(|(k, v)| vec![k, v[0]])
            .collect(),
    ))
}

fn q19(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let triples = params::q19();
    let air = code_of(cat, "lineitem", "l_shipmode", "AIR");
    let regair = code_of(cat, "lineitem", "l_shipmode", "REG AIR");
    let deliver = code_of(cat, "lineitem", "l_shipinstruct", "DELIVER IN PERSON");
    let size_max = [5i64, 10, 15];
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let part = qb.table("part");
    let p = qb.fk_gather(part, li, ".l_partkey");
    let isa = qb.eq_c(li, ".l_shipmode", air);
    let isra = qb.eq_c(li, ".l_shipmode", regair);
    let modem = qb.or(&[isa, isra]);
    let instrm = qb.eq_c(li, ".l_shipinstruct", deliver);
    let mut triple_masks = Vec::new();
    for (t, (brand, _, qmin)) in triples.iter().enumerate() {
        let bc = code_of(cat, "part", "p_brand", brand);
        let cont = qb.table(&aux::container(t));
        let contm_g = qb.fk_gather(cont, p, ".p_container");
        let contm = qb.p.project(contm_g, KeyPath::val(), KeyPath::val());
        let contb = qb.bin_c(BinOp::Greater, contm, ".val", 0);
        let brandm = qb.eq_c(p, ".p_brand", bc);
        let qtym = qb.in_range(li, ".l_quantity", *qmin, qmin + 11);
        let sizem = qb.in_range(p, ".p_size", 1, size_max[t] + 1);
        let all = qb.and(&[brandm, contb, qtym, sizem]);
        triple_masks.push(all);
    }
    let any = qb.or(&triple_masks);
    let m = qb.and(&[modem, instrm, any]);
    let rev = qb.revenue(li, ".l_extendedprice", ".l_discount");
    let mrev = qb.masked(rev, m);
    let s = qb.global_sum(mrev);
    qb.ret(s);
    let out = exec(&qb.finish(), cat)?;
    Ok(QueryResult::new(vec![vec![extract_scalar(
        &out.returns[0],
    )]]))
}

fn q20(cat: &Catalog, exec: &mut Exec<'_>) -> Result<QueryResult> {
    let (_, nation, lo, hi) = params::q20();
    let nk = nation_key(cat, nation);
    let n_supp = len_of(cat, "supplier") as i64;
    let n_ps = len_of(cat, "partsupp");
    let stride = (n_supp / 4).max(1);

    // Phase A: shipped quantity per partsupp row within the window.
    let mut qb = QB::new();
    let li = qb.table("lineitem");
    let m = qb.in_range(li, ".l_shipdate", lo, hi);
    let diff = qb.bin(BinOp::Subtract, li, ".l_suppkey", li, ".l_partkey");
    let rem = qb.p.mod_const(diff, n_supp);
    let shifted = qb.p.add_const(rem, n_supp);
    let modn = qb.p.mod_const(shifted, n_supp);
    let j = qb.p.div_const(modn, stride);
    let pk4 = qb.bin_c(BinOp::Multiply, li, ".l_partkey", 4);
    let psidx_raw = qb.p.add(pk4, j);
    let key = qb.masked(psidx_raw, m);
    let qty =
        qb.p.project(li, KeyPath::new(".l_quantity"), KeyPath::val());
    let mqty = qb.masked(qty, m);
    let mcnt = qb.p.project(m, KeyPath::val(), KeyPath::val());
    let (kf, sums) = qb.group_sums(key, n_ps, &[mqty, mcnt]);
    qb.ret(kf);
    qb.ret(sums[0]);
    qb.ret(sums[1]);
    let out = exec(&qb.finish(), cat)?;
    let rows = extract_grouped(&out.returns[0], &[&out.returns[1], &out.returns[2]]);
    let mut shipped = vec![0i64; n_ps];
    for (k, v) in rows {
        if v[1] > 0 {
            shipped[k as usize] = v[0];
        }
    }

    // Phase B: stage the subquery result and finish over partsupp
    // (MonetDB-style multi-statement plan with an intermediate BAT).
    let mut stage = Catalog::in_memory();
    let ps_t = cat.table("partsupp").expect("partsupp");
    let mut ps_copy = Table::new("partsupp");
    for c in ps_t.merged_columns() {
        ps_copy.add_column(c);
    }
    stage.insert_table(ps_copy);
    let supp_t = cat.table("supplier").expect("supplier");
    let mut supp_copy = Table::new("supplier");
    for c in supp_t.merged_columns() {
        supp_copy.add_column(c);
    }
    stage.insert_table(supp_copy);
    let part_t = cat.table("part").expect("part");
    let mut part_copy = Table::new("part");
    for c in part_t.merged_columns() {
        if c.name == "p_name" {
            part_copy.add_column(c);
        }
    }
    stage.insert_table(part_copy);
    let forest_t = cat
        .table(aux::NAME_FOREST)
        .expect("prepare() staged aux tables");
    let mut forest_copy = Table::new(aux::NAME_FOREST);
    for c in forest_t.merged_columns() {
        forest_copy.add_column(c);
    }
    stage.insert_table(forest_copy);
    stage.put_i64_column("__q20_shipped", &shipped);

    let mut qb = QB::new();
    let ps = qb.table("partsupp");
    let supplier = qb.table("supplier");
    let part = qb.table("part");
    let forest = qb.table(aux::NAME_FOREST);
    let shipped_t = qb.table("__q20_shipped");
    let p = qb.fk_gather(part, ps, ".ps_partkey");
    let isf_g = qb.fk_gather(forest, p, ".p_name");
    let isf = qb.bin_c(BinOp::Greater, isf_g, ".val", 0);
    let shippedv = qb.p.project(shipped_t, KeyPath::val(), KeyPath::val());
    let has = qb.bin_c(BinOp::Greater, shippedv, ".val", 0);
    let avail2 = qb.bin_c(BinOp::Multiply, ps, ".ps_availqty", 2);
    let enough = qb.p.binary(BinOp::Greater, avail2, shippedv);
    let supp = qb.fk_gather(supplier, ps, ".ps_suppkey");
    let isnat = qb.eq_c(supp, ".s_nationkey", nk);
    let m = qb.and(&[isf, has, enough, isnat]);
    let key_raw =
        qb.p.project(ps, KeyPath::new(".ps_suppkey"), KeyPath::val());
    let key = qb.masked(key_raw, m);
    let mcnt = qb.p.project(m, KeyPath::val(), KeyPath::val());
    let (kf, sums) = qb.group_sums(key, n_supp as usize, &[mcnt]);
    qb.ret(kf);
    qb.ret(sums[0]);
    let out = exec(&qb.finish(), &stage)?;
    let rows = extract_grouped(&out.returns[0], &[&out.returns[1]]);
    Ok(QueryResult::new(
        rows.into_iter()
            .filter(|(_, v)| v[0] > 0)
            .map(|(k, _)| vec![k])
            .collect(),
    ))
}
