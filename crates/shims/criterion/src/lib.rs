//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate provides the benchmark-harness subset the Voodoo benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size`, and `Bencher::iter`.
//!
//! It is a *functional* harness, not a statistical one: each benchmark is
//! warmed up once and then timed for `sample_size` iterations, reporting
//! mean wall-clock per iteration. That keeps `cargo bench` useful for
//! relative comparisons without criterion's analysis machinery.

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Build from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Time `f`, recording mean nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_ns = t0.elapsed().as_nanos() as f64 / self.iters.max(1) as f64;
    }
}

fn report(label: &str, b: &Bencher) {
    let (value, unit) = if b.mean_ns >= 1e9 {
        (b.mean_ns / 1e9, "s")
    } else if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{label:<60} {value:>10.3} {unit}/iter ({} iters)", b.iters);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Iterations to time per benchmark (criterion's closest knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Finish the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The harness entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 10,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(&id.to_string(), &b);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_payloads() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        {
            let mut g = c.benchmark_group("smoke");
            g.sample_size(3);
            g.bench_function(BenchmarkId::new("count", 1), |b| {
                b.iter(|| {
                    runs += 1;
                })
            });
            g.finish();
        }
        // warm-up + 3 timed iterations
        assert_eq!(runs, 4);
    }
}
