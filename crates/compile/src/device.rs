//! Execution devices.
//!
//! A [`Device`] tells the executor how much real parallelism to use and
//! carries the architectural parameters that cost models (and the tunability
//! experiments) reason about. The presets mirror the paper's testbed: a
//! multicore Xeon-class CPU and a TITAN-X-class GPU (the latter is executed
//! by `voodoo-gpusim` through its cost model).

/// Broad device classes with different execution strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Speculative out-of-order CPU; real threads, real time measurements.
    Cpu,
    /// Massively parallel in-order GPU; executed via the cost model.
    Gpu,
}

/// An execution device description.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Human-readable name.
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// Worker threads used by the CPU executor (ignored for GPU).
    pub threads: usize,
    /// SIMD lane width the device models (elements per vector op).
    pub simd_lanes: usize,
    /// Lockstep warp width (GPU) — threads sharing one program counter.
    pub warp_width: usize,
    /// Whether the device speculates on branches (CPUs do, GPUs don't).
    pub branch_prediction: bool,
    /// Last-level cache (or shared-memory) size in bytes per core.
    pub cache_bytes: usize,
    /// Peak sequential memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Latency of a random (uncached) memory access, seconds.
    pub rand_access_latency: f64,
    /// Throughput cost of one integer ALU op, seconds (per lane).
    pub int_op_cost: f64,
    /// Throughput cost of one float ALU op, seconds (per lane).
    pub float_op_cost: f64,
    /// Penalty of a mispredicted (or divergent) branch, seconds.
    pub branch_penalty: f64,
    /// Fixed cost of a global barrier / kernel launch, seconds.
    pub barrier_cost: f64,
    /// Number of work items the device executes concurrently.
    pub parallelism: usize,
}

impl Device {
    /// A single CPU thread (the "Single Thread" series of Figure 1).
    pub fn cpu_single_thread() -> Device {
        Device {
            name: "cpu-1t".to_string(),
            kind: DeviceKind::Cpu,
            threads: 1,
            simd_lanes: 8,
            warp_width: 1,
            branch_prediction: true,
            cache_bytes: 8 << 20,
            mem_bandwidth: 30e9,
            rand_access_latency: 90e-9,
            int_op_cost: 0.3e-9,
            float_op_cost: 0.3e-9,
            branch_penalty: 5e-9,
            barrier_cost: 1e-6,
            parallelism: 1,
        }
    }

    /// A multicore CPU ("Multithread" series); `threads` worker threads.
    pub fn cpu_multicore(threads: usize) -> Device {
        Device {
            name: format!("cpu-{threads}t"),
            threads: threads.max(1),
            parallelism: threads.max(1),
            ..Device::cpu_single_thread()
        }
    }

    /// The host CPU with all available cores.
    pub fn cpu_host() -> Device {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Device::cpu_multicore(threads)
    }

    /// A TITAN-X-class discrete GPU (paper §5.1: GeForce GTX TITAN X,
    /// ~300 GB/s, no speculation, weak integer throughput). Executed via
    /// the `voodoo-gpusim` cost model.
    pub fn gpu_titan_x() -> Device {
        Device {
            name: "gpu-titanx".to_string(),
            kind: DeviceKind::Gpu,
            threads: 1,
            simd_lanes: 32,
            warp_width: 32,
            branch_prediction: false,
            cache_bytes: 96 << 10,
            mem_bandwidth: 300e9,
            rand_access_latency: 350e-9,
            // §5.3: "the sacrifice of integer arithmetic for floating point
            // performance" — integer ops are markedly slower than float.
            int_op_cost: 0.35e-9,
            float_op_cost: 0.08e-9,
            branch_penalty: 0.0, // no speculation — divergence is modeled instead
            barrier_cost: 5e-6,
            parallelism: 3072,
        }
    }

    /// An integrated (on-die) GPU: shares the host memory system, so far
    /// lower bandwidth and cheaper "transfers" than a discrete card, a
    /// few hundred lanes of parallelism, and the same no-speculation
    /// execution model. Useful for studying which paper results are
    /// *architecture-class* effects (divergence, no speculation) vs
    /// *memory-system* effects (the 300 GB/s of the TITAN X).
    pub fn gpu_integrated() -> Device {
        Device {
            name: "gpu-integrated".to_string(),
            kind: DeviceKind::Gpu,
            threads: 1,
            simd_lanes: 8,
            warp_width: 8,
            branch_prediction: false,
            cache_bytes: 1 << 20,
            mem_bandwidth: 40e9,
            rand_access_latency: 150e-9,
            int_op_cost: 0.25e-9,
            float_op_cost: 0.12e-9,
            branch_penalty: 0.0,
            barrier_cost: 2e-6,
            parallelism: 256,
        }
    }

    /// A Xeon-Phi-class many-core: tens of small in-order x86 cores with
    /// wide SIMD and high-bandwidth on-package memory, but weak
    /// single-thread performance and a real (if modest) branch
    /// predictor — the "massively parallel co-processors such as GPUs or
    /// Intel's Xeon Phi" axis of the paper's introduction.
    pub fn manycore_phi() -> Device {
        Device {
            name: "manycore-phi".to_string(),
            kind: DeviceKind::Cpu,
            threads: 64,
            simd_lanes: 16,
            warp_width: 1,
            branch_prediction: true,
            cache_bytes: 512 << 10,
            mem_bandwidth: 200e9,
            rand_access_latency: 170e-9,
            int_op_cost: 0.9e-9,
            float_op_cost: 0.6e-9,
            branch_penalty: 8e-9,
            barrier_cost: 3e-6,
            parallelism: 64,
        }
    }

    /// An ARM-class efficiency CPU (the big.LITTLE direction the paper's
    /// introduction names): few threads, narrow SIMD, small caches,
    /// low bandwidth — everything is scarcer, so plan choices that trade
    /// memory traffic for compute shift their crossover points.
    pub fn cpu_arm_efficiency() -> Device {
        Device {
            name: "cpu-arm-eff".to_string(),
            kind: DeviceKind::Cpu,
            threads: 4,
            simd_lanes: 4,
            warp_width: 1,
            branch_prediction: true,
            cache_bytes: 2 << 20,
            mem_bandwidth: 12e9,
            rand_access_latency: 120e-9,
            int_op_cost: 0.7e-9,
            float_op_cost: 0.9e-9,
            branch_penalty: 8e-9,
            barrier_cost: 0.5e-6,
            parallelism: 4,
        }
    }

    /// This device with every time-valued parameter multiplied by
    /// `factor` — the one-knob calibration hook: measure one reference
    /// workload, divide measured by predicted seconds, scale the model.
    /// Event *counts* are unaffected; only their prices move.
    pub fn time_scaled(&self, factor: f64) -> Device {
        let f = factor.max(f64::MIN_POSITIVE);
        Device {
            name: format!("{}@x{f:.3}", self.name),
            mem_bandwidth: self.mem_bandwidth / f,
            rand_access_latency: self.rand_access_latency * f,
            int_op_cost: self.int_op_cost * f,
            float_op_cost: self.float_op_cost * f,
            branch_penalty: self.branch_penalty * f,
            barrier_cost: self.barrier_cost * f,
            ..self.clone()
        }
    }

    /// Whether an intermediate of `bytes` fits in the device cache.
    pub fn fits_cache(&self, bytes: usize) -> bool {
        bytes <= self.cache_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let cpu = Device::cpu_single_thread();
        assert!(cpu.branch_prediction);
        assert_eq!(cpu.threads, 1);

        let mt = Device::cpu_multicore(8);
        assert_eq!(mt.threads, 8);
        assert_eq!(mt.parallelism, 8);

        let gpu = Device::gpu_titan_x();
        assert!(!gpu.branch_prediction);
        assert!(gpu.int_op_cost > gpu.float_op_cost);
        assert!(gpu.mem_bandwidth > mt.mem_bandwidth);
    }

    #[test]
    fn cache_fit() {
        let cpu = Device::cpu_single_thread();
        assert!(cpu.fits_cache(1024));
        assert!(!cpu.fits_cache(1 << 30));
    }

    #[test]
    fn extended_presets_are_consistent() {
        let igpu = Device::gpu_integrated();
        assert_eq!(igpu.kind, DeviceKind::Gpu);
        assert!(!igpu.branch_prediction);
        assert!(igpu.mem_bandwidth < Device::gpu_titan_x().mem_bandwidth);

        let phi = Device::manycore_phi();
        assert_eq!(phi.kind, DeviceKind::Cpu);
        assert!(phi.branch_prediction, "Phi cores predict branches");
        assert!(phi.threads > Device::cpu_multicore(8).threads);
        assert!(
            phi.int_op_cost > Device::cpu_single_thread().int_op_cost,
            "weak single-thread ALU"
        );

        let arm = Device::cpu_arm_efficiency();
        assert!(arm.mem_bandwidth < Device::cpu_single_thread().mem_bandwidth);
    }

    #[test]
    fn time_scaling_scales_prices_not_structure() {
        let base = Device::cpu_single_thread();
        let slow = base.time_scaled(2.0);
        assert_eq!(slow.threads, base.threads);
        assert_eq!(slow.cache_bytes, base.cache_bytes);
        assert!((slow.int_op_cost - base.int_op_cost * 2.0).abs() < 1e-18);
        assert!((slow.mem_bandwidth - base.mem_bandwidth / 2.0).abs() < 1.0);
        // Scaling by 1 is the identity on every priced field.
        let same = base.time_scaled(1.0);
        assert_eq!(same.int_op_cost, base.int_op_cost);
        assert_eq!(same.barrier_cost, base.barrier_cost);
    }
}
