//! # voodoo-relational — the relational frontend
//!
//! The paper integrates Voodoo into MonetDB as "an alternative execution
//! engine", using MonetDB only for "data loading and query parsing" (§4).
//! This crate is that frontend: it turns the evaluation's TPC-H queries
//! into Voodoo programs, exploiting the same metadata the paper's planner
//! does — "identity hashing on open hashtables and derive their size from
//! the input domain (using only min and max)" — plus dictionary-level
//! predicate evaluation (`LIKE` is evaluated once per distinct string and
//! staged as an auxiliary flag column, the MonetDB way).
//!
//! Modules:
//! * [`builder`] — plan-construction helpers over [`voodoo_core::Program`]
//!   (masked predicates, dense-domain grouped aggregation, FK gathers) and
//!   padded-result extraction,
//! * [`mod@prepare`] — auxiliary tables staged at load time (dictionary flag
//!   columns, the day→year lookup),
//! * [`queries`] — one Voodoo plan per evaluated TPC-H query,
//! * [`engine`] — the shared, thread-safe [`Engine`]: catalog snapshots
//!   (copy-on-write), the backend registry, the sharded LRU plan cache,
//!   serving metrics, and [`Engine::run_batch`]; plus
//!   [`engine::run_query_on`] and the deprecated per-backend shims,
//! * [`serve`] — the admission-controlled serving front door: a bounded
//!   queue over one engine, drained by a fixed worker pool in
//!   weighted-fair session order, shedding explicitly on overload
//!   ([`ServerHandle`], [`ServeSession`], [`Receipt`]),
//! * [`overload`] — adaptive overload control for that front door: the
//!   CoDel-style admission controller ([`OverloadConfig`]), per-tenant
//!   service-time quotas ([`Quota`]), and the seeded client backoff
//!   policy ([`Retry`]),
//! * [`session`] — the [`Session`] handle: a cheap clone onto a shared
//!   engine, one entry point over every frontend (raw programs, TPC-H
//!   queries, SQL) and every registered [`voodoo_backend::Backend`];
//!   [`Statement`]s are `Send`, so many threads can prepare/run/profile
//!   concurrently against one engine,
//! * [`shard`] — sharded multi-engine serving: a [`ShardedEngine`] owns
//!   N engines plus a [`shard::Router`] assigning tables to shards;
//!   single-shard statements route straight through the owner's serve
//!   queue, cross-shard statements scatter-gather over their
//!   analyzer-derived read set, and results stay bit-identical to a
//!   single engine,
//! * [`sql`] — a small SQL subset parser lowered through the same builder
//!   (single-table `SELECT ... FROM ... WHERE ... GROUP BY`),
//! * [`views`] — materialized views maintained incrementally by the
//!   `voodoo-ivm` delta subsystem: [`Engine::create_view`] caches a
//!   query's result; reads refresh it from captured row deltas in
//!   `O(changes)`, falling back to a counted full recompute when
//!   row-level capture is unavailable.
//!
//! # Parallel execution
//!
//! The engine is parallel on two axes. *Across* statements: any number
//! of sessions/serve workers execute concurrently against immutable
//! catalog snapshots. *Within* a statement: the compiled CPU backend
//! fans hot kernels across storage-layer morsels
//! (`voodoo_storage::Partitioning`), merged in morsel order so results
//! are bit-identical to the serial interpreter oracle. The knob is
//! [`Engine::set_cpu_parallelism`] /
//! [`session::Session::set_cpu_parallelism`]
//! (`Off` | `Fixed(n)` | `Auto`); plan caching keys on it, so switching
//! never serves a plan compiled under another setting.
//!
//! Morsels execute on a **persistent work-stealing pool**
//! ([`voodoo_compile::pool`], reached via [`Engine::morsel_pool`]):
//! long-lived workers with per-worker deques, LIFO-local pops and
//! FIFO steals, so a skewed morsel rebalances onto idle workers
//! instead of stalling the statement — and serving QPS no longer pays
//! a thread spawn per execution unit. Statements over-decompose their
//! domains (`steal_grain` morsels per worker) to leave the scheduler
//! units to move. Under [`serve`], each admission worker carries an
//! intra-statement parallelism budget of `cores / workers` — the
//! *lease* it takes on the shared pool — so statement fan-out and the
//! admission pool compose to the machine rather than oversubscribing
//! it (prefer fewer serve workers when statements are big and
//! scan-bound, more when they are small and latency-bound).
//! [`EngineMetrics`] reports `partitions_used` / `parallel_statements`
//! (and [`EngineMetrics::mean_partitions`]) for the offered fan-out,
//! plus `pool_tasks` / `steals` for what the scheduler actually did
//! with it. A panic inside a morsel task fails only its statement; the
//! pool keeps serving.
//!
//! # Batched ingest
//!
//! Writers publish through copy-on-write snapshots, and the cost of a
//! publication is the mutation itself: [`Session::append_rows`]
//! (`session::Session::append_rows` / [`Engine::append_rows`]) seals
//! the batch into an `Arc`-shared append segment, so appending is
//! O(batch + #tables) no matter how many rows are already resident,
//! and concurrent readers keep their snapshots untouched. Views over
//! the appended table refresh from the segment delta, not a rescan.
//!
//! ```
//! use voodoo_relational::Session;
//! use voodoo_storage::Catalog;
//!
//! let mut cat = Catalog::in_memory();
//! cat.put_i64_column("events", &[10, 20, 30]);
//! let session = Session::new(cat);
//!
//! // Ingest a batch; the snapshot published shares all prior storage.
//! assert!(session.append_rows("events", &[vec![40], vec![50]]));
//! assert_eq!(
//!     session.run_sql("SELECT COUNT(*), SUM(val) FROM events").unwrap(),
//!     vec![vec![5, 150]],
//! );
//! ```
//!
//! # Static verification
//!
//! Every statement is analyzed by `voodoo-verify` inside
//! `Backend::prepare` — structure, shape/sentinel domains, effects,
//! parallel safety — so nothing executes unverified, and a malformed
//! program fails with pointed [`voodoo_core::Diagnostic`]s rather than
//! a panic. The same pipeline is exposed as a dry run that spends no
//! plan-cache entry or queue slot: [`session::Statement::verify`],
//! [`Session::verify`](session::Session::verify), and
//! [`ServerHandle::verify`] / [`serve::ServeSession::verify`] at the
//! serving front door.
//!
//! ```
//! use voodoo_core::{Pass, Program, VRef};
//! use voodoo_relational::Session;
//! use voodoo_storage::Catalog;
//!
//! let mut cat = Catalog::in_memory();
//! cat.put_i64_column("t", &[1, 2, 3]);
//! let session = Session::new(cat);
//!
//! let mut p = Program::new();
//! let t = p.load("t");
//! p.add(t, VRef(9)); // forward reference: %9 is never defined
//! p.ret(t);
//!
//! let diags = session.program(p).verify();
//! assert_eq!(diags[0].stmt, Some(1));
//! assert_eq!(diags[0].pass, Pass::Structure);
//! ```
//!
//! The repo-level `ARCHITECTURE.md` maps how these pieces — and the
//! other twelve crates — fit together.

// The serving surface is the public face of the reproduction: every
// exported item carries documentation, enforced at build time.
#![warn(missing_docs)]

pub mod builder;
pub mod engine;
pub mod overload;
pub mod prepare;
pub mod queries;
pub mod serve;
pub mod session;
pub mod shard;
pub mod sql;
pub mod views;

#[allow(deprecated)]
pub use engine::{run_compiled, run_compiled_optimized, run_interp, run_with};
pub use engine::{run_query_on, CatalogWrite, Engine, EngineMetrics, StatementSpec};
pub use overload::{OverloadConfig, Quota, Retry};
pub use prepare::prepare;
pub use serve::{
    Completion, Receipt, ServeConfig, ServeError, ServeResult, ServeSession, ServeStats,
    ServerHandle, SessionServeStats, SubmitError, DEFAULT_QUEUE_CAPACITY,
};
pub use session::{RunProfile, Session, Statement, StatementOutput};
pub use shard::{Router, ShardError, ShardedEngine, ShardedMetrics, ShardedSession};
pub use views::{
    AggDef, AggFn, AggSpec, JoinDef, MaintainedView, Pred, RefreshKind, SExpr, Source, ViewDef,
};

#[cfg(test)]
mod tests;
