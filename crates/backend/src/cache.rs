//! Keyed prepared-plan caching: compile once, run many.
//!
//! The paper compiles per query ("since we generate code, we have
//! information about factors such as datasizes at compile time", footnote
//! 1); a serving system re-runs the same queries against the same loaded
//! data, so recompiling per execution is pure waste. [`PlanCache`] maps
//! `(backend, catalog version, program)` to the prepared plan. The catalog
//! version ([`voodoo_storage::Catalog::version`]) invalidates every entry
//! whenever table shapes can have changed; the program key is the full
//! rendered SSA text, so two structurally identical plans share one entry
//! and hash collisions are impossible.

use std::collections::HashMap;
use std::sync::Arc;

use voodoo_core::{Program, Result};
use voodoo_storage::Catalog;

use crate::{Backend, PreparedPlan};

/// Cache key: backend identity, catalog mutation counter, program text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Backend name the plan was prepared by.
    pub backend: String,
    /// [`Catalog::version`] at preparation time.
    pub catalog_version: u64,
    /// The program's rendered SSA text (exact, collision-free).
    pub program: String,
}

impl PlanKey {
    /// Build the key for a program on a backend against a catalog state.
    pub fn new(backend: &dyn Backend, catalog: &Catalog, program: &Program) -> PlanKey {
        PlanKey {
            backend: backend.name().to_string(),
            catalog_version: catalog.version(),
            program: program.to_string(),
        }
    }
}

/// Hit/miss counters (cumulative since construction or [`PlanCache::clear`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to prepare.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// A keyed cache of prepared plans.
#[derive(Default)]
pub struct PlanCache {
    map: HashMap<PlanKey, Arc<dyn PreparedPlan>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Fetch the prepared plan for `program` on `backend`, preparing (and
    /// caching) it on first use.
    ///
    /// Inserting a plan evicts entries for the same `(backend, program)`
    /// at other catalog versions: they can never hit again (versions are
    /// monotonic per catalog), so dropping them bounds memory on sessions
    /// that interleave catalog mutations with query runs.
    pub fn get_or_prepare(
        &mut self,
        backend: &dyn Backend,
        program: &Program,
        catalog: &Catalog,
    ) -> Result<Arc<dyn PreparedPlan>> {
        let key = PlanKey::new(backend, catalog, program);
        if let Some(plan) = self.map.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(plan));
        }
        let plan = backend.prepare(program, catalog)?;
        self.misses += 1;
        self.map.retain(|k, _| {
            k.catalog_version == key.catalog_version
                || k.backend != key.backend
                || k.program != key.program
        });
        self.map.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
        }
    }

    /// Drop every entry and reset the counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuBackend, InterpBackend};
    use voodoo_core::KeyPath;

    fn fixture() -> (Catalog, Program) {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("t", &[1, 2, 3, 4]);
        let mut p = Program::new();
        let t = p.load("t");
        let s = p.fold_sum_global(t);
        p.ret(s);
        (cat, p)
    }

    #[test]
    fn second_lookup_hits() {
        let (cat, p) = fixture();
        let backend = CpuBackend::single_threaded();
        let mut cache = PlanCache::new();
        let a = cache.get_or_prepare(&backend, &p, &cat).unwrap();
        let b = cache.get_or_prepare(&backend, &p, &cat).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same prepared plan instance");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
        let out = b.execute(&cat).unwrap();
        assert_eq!(
            out.returns[0]
                .value_at(0, &KeyPath::val())
                .map(|v| v.as_i64()),
            Some(10)
        );
    }

    #[test]
    fn distinct_backends_get_distinct_entries() {
        let (cat, p) = fixture();
        let cpu = CpuBackend::single_threaded();
        let interp = InterpBackend::new();
        let mut cache = PlanCache::new();
        cache.get_or_prepare(&cpu, &p, &cat).unwrap();
        cache.get_or_prepare(&interp, &p, &cat).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn catalog_mutation_invalidates() {
        let (mut cat, p) = fixture();
        let backend = CpuBackend::single_threaded();
        let mut cache = PlanCache::new();
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        // Replacing the table changes the version — the old plan is stale.
        cat.put_i64_column("t", &[10, 20, 30, 40, 50]);
        let plan = cache.get_or_prepare(&backend, &p, &cat).unwrap();
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
        let out = plan.execute(&cat).unwrap();
        assert_eq!(
            out.returns[0]
                .value_at(0, &KeyPath::val())
                .map(|v| v.as_i64()),
            Some(150)
        );
    }

    #[test]
    fn clear_resets_everything() {
        let (cat, p) = fixture();
        let backend = CpuBackend::single_threaded();
        let mut cache = PlanCache::new();
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
