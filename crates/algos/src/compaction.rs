//! Branch-free compaction and algebra-level sorting.
//!
//! [`compact`] generalizes Ross-style cursor arithmetic (the Figure 1
//! branch-free selection) from *position emission* to *writes*: an
//! inclusive `FoldScan` over the 0/1 predicate computes every qualifying
//! tuple's output cursor, non-qualifying tuples are parked at an
//! out-of-bounds position (the algebra drops out-of-range scatter writes),
//! and one `Scatter` compacts the survivors to the front of the output.
//!
//! [`radix_sort`] shows that the algebra's `Partition` — a *stable*
//! counting sort by pivot bucket — composes into a full LSD radix sort:
//! pass `k` buckets tuples by digit `k` and scatters them; stability makes
//! the passes compose. The paper's Table 2 semantics ("Scatters are
//! performed in order within a value-run") is exactly the stability
//! guarantee this needs.

use voodoo_core::{BinOp, KeyPath, Program};

/// Branch-free stream compaction: move the values of `table.val` that
/// satisfy `val < c` to the front of an equally-sized output vector
/// (ε tail). One pass of arithmetic + one scatter; no `if`.
pub fn compact(table: &str, c: i64) -> Program {
    let mut p = Program::new();
    let v = p.load(table);
    let pred = p.binary_const(BinOp::Less, v, KeyPath::val(), c, KeyPath::val());
    p.label(pred, "pred");
    // Inclusive prefix sum of the predicate = 1-based output cursor for
    // qualifying tuples.
    let scan = p.fold_scan_global(pred);
    p.label(scan, "cursor");
    let zero_based = p.sub_const(scan, 1i64);
    // Park non-qualifying tuples out of bounds (the algebra drops
    // out-of-range scatter writes): pos = pred·cursor + (1-pred)·PARK
    // with PARK far beyond any input size.
    let masked_pos = p.mul(zero_based, pred);
    let one = p.constant(1i64);
    let not_pred = p.binary_kp(
        BinOp::Subtract,
        one,
        KeyPath::val(),
        pred,
        KeyPath::val(),
        KeyPath::val(),
    );
    let park = p.mul_const(not_pred, i64::MAX / 4);
    let pos = p.add(masked_pos, park);
    p.label(pos, "scatterPos");
    let out = p.scatter(v, v, pos);
    p.label(out, "compacted");
    p.ret(out);
    p
}

/// Stable LSD radix sort of the non-negative keys in `table.val`:
/// `passes` passes of `bits` bits each (so keys must fit in
/// `passes · bits` bits). Each pass is `Divide` + `Modulo` (digit
/// extraction), `Partition` (stable counting sort by digit) and
/// `Scatter` (apply the permutation).
pub fn radix_sort(table: &str, bits: u32, passes: u32) -> Program {
    let mut p = Program::new();
    let mut data = p.load(table);
    let radix = 1i64 << bits;
    for pass in 0..passes {
        let shift = 1i64 << (bits * pass);
        let shifted = p.div_const(data, shift);
        let digit = p.mod_const(shifted, radix);
        p.label(digit, &format!("digit{pass}"));
        let pivots = p.range(0, radix as usize, 1);
        let pos = p.partition(digit, KeyPath::val(), pivots, KeyPath::val());
        data = p.scatter(data, data, pos);
        p.label(data, &format!("pass{pass}"));
    }
    p.ret(data);
    p
}

/// Adjacent-run deduplication of a *sorted* vector: keep the first
/// element of every run of equal values, ε the rest — the classic
/// `SELECT DISTINCT` kernel. Implemented as a `FoldMin` controlled by the
/// values themselves (each run of equals is one fold run).
pub fn dedup_sorted(table: &str) -> Program {
    let mut p = Program::new();
    let v = p.load(table);
    let zipped = p.zip_kp(
        KeyPath::new(".fold"),
        v,
        KeyPath::val(),
        KeyPath::val(),
        v,
        KeyPath::val(),
    );
    let firsts = p.fold_agg_kp(
        voodoo_core::AggKind::Min,
        zipped,
        Some(KeyPath::new(".fold")),
        KeyPath::val(),
        KeyPath::val(),
    );
    p.label(firsts, "distinct");
    p.ret(firsts);
    p
}

/// Histogram of the values of `table.val`, which must lie in
/// `0..buckets` (dense domain — the bucket id *is* the value):
/// `Partition` + `Scatter` + `FoldCount` (the Figure 11 counting pattern),
/// returned padded-aligned as `(bucket_keys, counts)`.
pub fn histogram(table: &str, buckets: usize) -> Program {
    let mut p = Program::new();
    let v = p.load(table);
    let pivots = p.range(0, buckets.max(1), 1);
    let pos = p.partition(v, KeyPath::val(), pivots, KeyPath::val());
    let zipped = p.zip_kp(
        KeyPath::val(),
        v,
        KeyPath::val(),
        KeyPath::new(".bucket"),
        v,
        KeyPath::val(),
    );
    let scattered = p.scatter_kp(zipped, zipped, None, pos, KeyPath::val());
    let keys = p.fold_agg_kp(
        voodoo_core::AggKind::Max,
        scattered,
        Some(KeyPath::new(".bucket")),
        KeyPath::new(".bucket"),
        KeyPath::val(),
    );
    let counts = p.fold_count_kp(scattered, Some(KeyPath::new(".bucket")));
    p.ret(keys);
    p.ret(counts);
    p
}
