//! Architectural event counting.
//!
//! The compiled backend can execute any kernel in *profiling* mode, counting
//! the hardware-relevant events of each operation. The counts feed the
//! simulated GPU device (`voodoo-gpusim`) and the ablation harnesses: they
//! are exactly the quantities the paper's §5.3 explanations reason about
//! (branch mispredictions, random cache misses, integer-ALU pressure,
//! memory traffic, barriers).

/// Counts of architectural events observed while executing kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventProfile {
    /// Data-dependent conditional branches executed (filter decisions).
    pub branches: u64,
    /// Branches whose outcome differed from the previous outcome of the
    /// same branch site — a first-order misprediction proxy.
    pub branch_flips: u64,
    /// Integer ALU operations.
    pub int_ops: u64,
    /// Floating-point ALU operations.
    pub float_ops: u64,
    /// Comparison operations.
    pub cmp_ops: u64,
    /// Bytes read with sequential access patterns.
    pub seq_read_bytes: u64,
    /// Random-access reads (each potentially a cache miss).
    pub rand_reads: u64,
    /// Largest working set (bytes) targeted by random reads — decides
    /// whether they hit cache (Figure 14's 4MB vs 128MB regimes).
    pub rand_working_set: u64,
    /// Bytes written sequentially.
    pub write_bytes: u64,
    /// Random-access writes (scatter stores).
    pub rand_writes: u64,
    /// Global synchronization barriers (fragment seams → new kernels).
    pub barriers: u64,
    /// Work items launched (sum of fragment extents).
    pub work_items: u64,
    /// Elements processed (sum of extent × intent).
    pub elements: u64,
    /// Device-exploitable parallelism of this unit (work items after the
    /// backend's hierarchical-reduction rewrite; 0 = use `work_items`).
    /// Sequential-fill units (cursor-based emission, dynamic runs) keep
    /// their true, lower value — the paper's "filled sequentially, which
    /// limits the degree of parallelism" effect.
    pub max_par: u64,
}

impl EventProfile {
    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &EventProfile) {
        self.branches += other.branches;
        self.branch_flips += other.branch_flips;
        self.int_ops += other.int_ops;
        self.float_ops += other.float_ops;
        self.cmp_ops += other.cmp_ops;
        self.seq_read_bytes += other.seq_read_bytes;
        self.rand_reads += other.rand_reads;
        self.rand_working_set = self.rand_working_set.max(other.rand_working_set);
        self.write_bytes += other.write_bytes;
        self.rand_writes += other.rand_writes;
        self.barriers += other.barriers;
        self.work_items += other.work_items;
        self.elements += other.elements;
        self.max_par = self.max_par.max(other.max_par);
    }

    /// Total bytes moved (reads + writes, random accesses priced as a full
    /// cache line of 64 bytes).
    pub fn total_traffic_bytes(&self) -> u64 {
        self.seq_read_bytes + self.write_bytes + 64 * (self.rand_reads + self.rand_writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = EventProfile {
            branches: 1,
            int_ops: 2,
            ..Default::default()
        };
        let b = EventProfile {
            branches: 10,
            rand_reads: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.branches, 11);
        assert_eq!(a.int_ops, 2);
        assert_eq!(a.rand_reads, 5);
    }

    #[test]
    fn traffic_prices_random_as_lines() {
        let p = EventProfile {
            seq_read_bytes: 100,
            rand_reads: 2,
            ..Default::default()
        };
        assert_eq!(p.total_traffic_bytes(), 100 + 128);
    }
}
