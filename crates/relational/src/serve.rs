//! The serving front door: a bounded admission queue in front of a
//! shared [`Engine`], drained by a fixed worker pool with per-session
//! weighted-fair dequeueing and explicit overload shedding.
//!
//! PR 2 made the stack thread-safe, but a thread-per-statement fan-out
//! has no backpressure: under offered load beyond capacity it just grows
//! threads and latency without bound. This module is the missing front
//! door. Requests are [`StatementSpec`]s; admission is explicit:
//!
//! * [`ServeSession::submit`] — non-blocking. A full queue **sheds** the
//!   request ([`SubmitError::QueueFull`]) instead of queueing it; the
//!   shed is counted per session and on the engine
//!   ([`crate::EngineMetrics::sheds`]).
//! * [`ServeSession::submit_wait`] — blocking admission with an optional
//!   deadline; expiry returns [`SubmitError::Timeout`], never a hang.
//!
//! # Adaptive overload control
//!
//! The hard queue bound is the *blunt* defense. With
//! [`ServeConfig::with_overload`] the server also runs the CoDel-style
//! admission controller ([`crate::OverloadConfig`], see
//! [`crate::overload`]): workers feed it the queue wait of every
//! dequeued statement, and while even the minimum wait over a full
//! interval exceeds the target, newly arriving `submit`s are shed
//! probabilistically ([`SubmitError::Overloaded`]) *before* the queue
//! fills — bounding sojourn instead of queue length. Three companions:
//!
//! * **Quotas** — [`ServerHandle::session_with_quota`] attaches a
//!   token bucket of observed service-seconds to a session; an empty
//!   bucket sheds that tenant ([`SubmitError::QuotaExceeded`]) while
//!   others keep their latency.
//! * **Deadline propagation** — the deadline given to
//!   [`ServeSession::submit_wait`] / [`ServeSession::submit_deadline`]
//!   rides with the admitted statement: if it expires while the
//!   statement is still queued, the worker drops it at dequeue
//!   ([`ServeError::Timeout`], counted as `timed_out`) instead of
//!   executing work nobody is waiting for.
//! * **Parallelism-budget scaling** — each worker's morsel-pool lease
//!   shrinks linearly with queue depth (from the full `cores/workers`
//!   budget at an empty queue down to 1 at a full one): under pressure
//!   the machine serves *more statements* rather than *each statement
//!   faster*.
//!
//! Clients shed with a retryable error converge with
//! [`crate::Retry`] — capped exponential backoff with decorrelated
//! jitter — instead of thundering back in lockstep.
//!
//! Admitted work returns a [`Receipt`] — a one-shot future on std
//! primitives (`Mutex` + `Condvar`, no new dependencies). Workers drain
//! the queue in **weighted-fair** order across sessions (min virtual
//! time, FIFO within a session), execute through the engine's plan cache
//! and record into its latency reservoir; a worker panic fails only the
//! panicking receipt ([`ServeError::WorkerPanic`]) while the pool keeps
//! serving.
//!
//! Serve workers do not nest thread spawns for intra-statement
//! parallelism: each worker carries a parallelism *budget* of
//! `cores / workers` ([`voodoo_compile::exec::set_parallelism_budget`])
//! that caps how many morsels its statements offer the engine's
//! persistent work-stealing pool ([`Engine::morsel_pool`]) — admission
//! workers and morsel workers lease the same machine instead of
//! multiplying against each other.
//!
//! ```
//! use std::sync::Arc;
//! use voodoo_relational::{Engine, ServeConfig, StatementSpec};
//! use voodoo_tpch::queries::Query;
//!
//! let engine = Arc::new(Engine::tpch(0.002));
//! let server = engine.serve(ServeConfig::default().with_workers(2));
//! let alice = server.session(1);
//! let receipt = alice.submit(StatementSpec::tpch(Query::Q6)).unwrap();
//! let rows = receipt.wait().unwrap().into_rows();
//! assert!(!rows.is_empty());
//! assert_eq!(alice.stats().served, 1);
//! assert!(engine.metrics().queries_served >= 1);
//! server.shutdown();
//! ```
//!
//! Retry a shed admission with jittered backoff, and propagate a
//! completion deadline so work that can no longer meet it is dropped
//! at dequeue instead of executed late:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::{Duration, Instant};
//! use voodoo_relational::{Engine, Retry, ServeConfig, StatementSpec};
//! use voodoo_tpch::queries::Query;
//!
//! let engine = Arc::new(Engine::tpch(0.002));
//! let server = engine.serve(
//!     ServeConfig::default().with_workers(2).with_queue_capacity(4),
//! );
//! let tenant = server.session(1);
//!
//! // Shed refusals (`QueueFull` / `Overloaded` / `QuotaExceeded`) are
//! // retryable; `Retry` converges with capped decorrelated jitter
//! // instead of thundering back in lockstep.
//! let receipt = Retry::new()
//!     .run(|| tenant.submit_deadline(
//!         StatementSpec::tpch(Query::Q6),
//!         Instant::now() + Duration::from_secs(60),
//!     ))
//!     .unwrap();
//! assert!(receipt.wait().is_ok(), "generous deadline: it serves");
//! server.shutdown();
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use voodoo_core::{Diagnostic, VoodooError};

use crate::engine::{Engine, StatementSpec};
use crate::overload::{Controller, OverloadConfig, Quota, TokenBucket};
use crate::session::StatementOutput;

/// Default bound on admitted-but-not-yet-executing statements.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Weight granularity for the fair scheduler's virtual clock.
const WFQ_SCALE: u64 = 1 << 20;

// ---------------------------------------------------------------------
// Configuration and error types
// ---------------------------------------------------------------------

/// Sizing for a [`ServerHandle`]: how much work may wait, and how many
/// workers drain it.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum admitted statements waiting to execute (excess is shed).
    pub queue_capacity: usize,
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Adaptive admission control; `None` (the default) keeps admission
    /// blunt (hard queue bound only).
    pub overload: Option<OverloadConfig>,
    /// Base intra-statement parallelism budget per worker; defaults to
    /// `cores / workers`. The effective budget shrinks linearly as the
    /// queue fills (down to 1 at a full queue).
    pub intra_budget: Option<usize>,
    /// Name this server goes by in error attribution (default
    /// `"serve"`). Execution failures carry `[<label>/session-<n>]` in
    /// their message, so in a multi-server topology — e.g. one server
    /// per shard ([`crate::shard`]) — a failure names its origin.
    pub label: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(8),
            overload: None,
            intra_budget: None,
            label: None,
        }
    }
}

impl ServeConfig {
    /// Override the queue capacity (minimum 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Override the worker count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers.max(1);
        self
    }

    /// Enable the CoDel-style adaptive admission controller.
    pub fn with_overload(mut self, overload: OverloadConfig) -> ServeConfig {
        self.overload = Some(overload);
        self
    }

    /// Override the per-worker base parallelism budget (minimum 1).
    pub fn with_intra_budget(mut self, budget: usize) -> ServeConfig {
        self.intra_budget = Some(budget.max(1));
        self
    }

    /// Name this server for error attribution: execution failures carry
    /// `[<label>/session-<n>]` in their message so multi-server failures
    /// are debuggable from the error alone.
    pub fn with_label(mut self, label: impl Into<String>) -> ServeConfig {
        self.label = Some(label.into());
        self
    }
}

/// Why a submission was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity and [`ServeSession::submit`] does not
    /// block: the request was shed.
    QueueFull,
    /// [`ServeSession::submit_wait`]'s deadline expired before space
    /// opened up.
    Timeout,
    /// The server has shut down.
    Shutdown,
    /// The adaptive admission controller is shedding: queue wait has
    /// exceeded the sojourn target for a full interval (see
    /// [`crate::OverloadConfig`]). Transient by design — retry with
    /// backoff ([`crate::Retry`]).
    Overloaded,
    /// The session's service-time quota is exhausted (see
    /// [`ServerHandle::session_with_quota`]). Refills continuously at
    /// the quota rate, so this too is retryable.
    QuotaExceeded,
}

impl SubmitError {
    /// Whether retrying (with backoff) can succeed without operator
    /// intervention. `QueueFull`, `Overloaded`, and `QuotaExceeded` are
    /// load conditions that drain on their own; `Timeout` means the
    /// caller's own deadline has already passed and `Shutdown` is
    /// permanent.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SubmitError::QueueFull | SubmitError::Overloaded | SubmitError::QuotaExceeded
        )
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue full: request shed"),
            SubmitError::Timeout => write!(f, "admission deadline expired"),
            SubmitError::Shutdown => write!(f, "server is shut down"),
            SubmitError::Overloaded => {
                write!(f, "server overloaded: adaptive controller shed the request")
            }
            SubmitError::QuotaExceeded => write!(f, "session service-time quota exhausted"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<SubmitError> for VoodooError {
    fn from(e: SubmitError) -> VoodooError {
        VoodooError::Backend(format!("admission refused: {e}"))
    }
}

/// Why an *admitted* statement failed to produce output.
#[derive(Debug)]
pub enum ServeError {
    /// The engine executed the statement and returned an error.
    Engine(VoodooError),
    /// The executing worker panicked; only this receipt fails — the pool
    /// keeps serving.
    WorkerPanic(String),
    /// [`Receipt::wait_deadline`] expired before the statement completed.
    /// (Shutdown is not a receipt failure: [`ServerHandle::shutdown`]
    /// drains every admitted statement before the workers exit.)
    Timeout,
}

impl ServeError {
    /// Collapse into the engine-wide error type (used by
    /// [`Engine::run_batch`], whose callers predate the serve layer).
    pub fn into_engine_error(self) -> VoodooError {
        match self {
            ServeError::Engine(e) => e,
            ServeError::WorkerPanic(msg) => {
                VoodooError::Backend(format!("worker panicked during execution: {msg}"))
            }
            ServeError::Timeout => VoodooError::Backend("serve deadline expired".to_string()),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            ServeError::Timeout => write!(f, "deadline expired before completion"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

/// Result of one admitted statement.
pub type ServeResult = Result<StatementOutput, ServeError>;

// ---------------------------------------------------------------------
// Receipt: a one-shot completion future on std primitives
// ---------------------------------------------------------------------

/// A finished statement: its result plus the admission-to-completion
/// sojourn (queue wait + execution) — the open-loop latency a client
/// observes.
#[derive(Debug)]
pub struct Completion {
    /// The statement's outcome.
    pub result: ServeResult,
    /// Submit-to-completion time.
    pub sojourn: Duration,
}

struct ReceiptState {
    slot: Mutex<Option<(ServeResult, Duration)>>,
    done: Condvar,
    submitted_at: Instant,
}

impl ReceiptState {
    fn fulfill(&self, result: ServeResult) {
        let sojourn = self.submitted_at.elapsed();
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some((result, sojourn));
        self.done.notify_all();
    }
}

/// A typed completion handle for one admitted statement — a one-shot
/// channel on `Mutex` + `Condvar`.
pub struct Receipt {
    state: Arc<ReceiptState>,
}

impl std::fmt::Debug for Receipt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let done = self.state.slot.lock().map(|s| s.is_some()).unwrap_or(false);
        f.debug_struct("Receipt").field("done", &done).finish()
    }
}

impl Receipt {
    /// Block until the statement completes.
    pub fn wait(self) -> ServeResult {
        self.wait_completion().result
    }

    /// Block until completion, also reporting the sojourn time.
    pub fn wait_completion(self) -> Completion {
        let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((result, sojourn)) = slot.take() {
                return Completion { result, sojourn };
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until the statement completes or `deadline` passes —
    /// expiry returns [`ServeError::Timeout`], never a hang. (The
    /// statement itself stays queued and will still execute; only the
    /// caller stops waiting.)
    pub fn wait_deadline(self, deadline: Instant) -> ServeResult {
        let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((result, _)) = slot.take() {
                return result;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::Timeout);
            }
            slot = self
                .state
                .done
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Whether the statement has completed (non-blocking, non-consuming).
    pub fn is_done(&self) -> bool {
        self.state
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Non-blocking poll: the completion if the statement has finished,
    /// or the receipt back if it has not. Consuming `self` keeps the
    /// one-shot contract honest — a receipt whose result was taken can
    /// no longer be `wait`ed on (which would block forever).
    pub fn try_take(self) -> Result<Completion, Receipt> {
        let taken = self
            .state
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        match taken {
            Some((result, sojourn)) => Ok(Completion { result, sojourn }),
            None => Err(self),
        }
    }
}

// ---------------------------------------------------------------------
// Queue state
// ---------------------------------------------------------------------

/// Per-session serving counters (cumulative since the session opened).
///
/// Every submission terminates in exactly one bucket:
/// `submitted == served + shed + timed_out` once the session quiesces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionServeStats {
    /// Statements submitted — admitted **or** shed (every attempt).
    pub submitted: u64,
    /// Statements executed to completion (successfully or not).
    pub served: u64,
    /// Statements refused admission (queue full, admission-wait expiry,
    /// adaptive controller, or quota).
    pub shed: u64,
    /// Admitted statements dropped at dequeue because their propagated
    /// deadline had already expired (see [`ServeSession::submit_deadline`]).
    pub timed_out: u64,
    /// Plan-cache hits attributed to this session's executions.
    pub cache_hits: u64,
    /// Plan-cache misses (preparations) attributed to this session.
    pub cache_misses: u64,
}

#[derive(Default)]
struct SessionCounters {
    submitted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl SessionCounters {
    fn snapshot(&self) -> SessionServeStats {
        SessionServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }
}

/// A session's service-time budget, shared (behind its own lock) between
/// the admission path and the worker that debits observed service time.
type SharedBucket = Arc<Mutex<TokenBucket>>;

struct Job {
    spec: StatementSpec,
    /// Index of the submitting session — combined with the server label
    /// into the `[<label>/session-<n>]` error-attribution prefix.
    session: usize,
    receipt: Arc<ReceiptState>,
    /// The submitting session's counters, carried with the job so the
    /// executing worker never re-locks the queue to attribute work.
    counters: Arc<SessionCounters>,
    /// The session's quota bucket (if any), debited by observed service
    /// time after execution.
    bucket: Option<SharedBucket>,
    /// When the job entered the queue — workers feed the wait into the
    /// adaptive controller.
    enqueued_at: Instant,
    /// Propagated completion deadline: expired jobs are dropped at
    /// dequeue instead of executed.
    deadline: Option<Instant>,
}

struct SessionSlot {
    weight: u64,
    /// Virtual time consumed: advances by `WFQ_SCALE / weight` per
    /// dequeued statement, so heavier sessions advance slower and get
    /// proportionally more turns.
    vtime: u64,
    queue: VecDeque<Job>,
    counters: Arc<SessionCounters>,
    /// Service-time quota; `None` means unlimited.
    bucket: Option<SharedBucket>,
}

struct QueueState {
    sessions: Vec<SessionSlot>,
    /// Admitted statements not yet handed to a worker (sum of queues).
    queued: usize,
    /// Virtual start time of the most recently dequeued statement; new
    /// or re-activated sessions join at this clock so an idle session
    /// cannot bank credit and starve the others.
    global_vtime: u64,
    /// CoDel-style adaptive admission controller (None = blunt mode).
    controller: Option<Controller>,
    shutdown: bool,
}

/// Which admission defense refused the request (for metric attribution).
#[derive(Clone, Copy)]
enum ShedKind {
    /// Hard queue bound or admission-wait expiry.
    Blunt,
    /// The adaptive controller's probabilistic early shed.
    Adaptive,
    /// A per-session quota bucket ran dry.
    Quota,
}

struct ServeShared {
    engine: Arc<Engine>,
    /// This server's name in error attribution (default `"serve"`).
    label: String,
    capacity: usize,
    /// Full per-worker intra-statement parallelism budget (at an empty
    /// queue); shrinks linearly with queue depth.
    base_budget: usize,
    state: Mutex<QueueState>,
    /// Workers wait here for jobs.
    job_ready: Condvar,
    /// Blocking submitters wait here for queue space.
    space_ready: Condvar,
    submitted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
}

impl ServeShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        // A panicking worker fulfills its receipt and never poisons the
        // queue mid-update, so the poison flag carries no information.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pop the next job in weighted-fair order: the non-empty session
    /// with the smallest virtual time (ties broken by session id), FIFO
    /// within the session. Feeds the job's queue wait into the adaptive
    /// controller and returns the intra-statement parallelism budget for
    /// executing it (shrinking linearly as the queue fills).
    fn dequeue(&self, st: &mut QueueState) -> Option<(Job, usize)> {
        let idx = st
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.queue.is_empty())
            .min_by_key(|(i, s)| (s.vtime, *i))
            .map(|(i, _)| i)?;
        let slot = &mut st.sessions[idx];
        st.global_vtime = slot.vtime;
        // `.max(1)`: a weight above WFQ_SCALE must still advance the
        // clock, or that session would win every tie and starve the rest.
        slot.vtime += (WFQ_SCALE / slot.weight).max(1);
        let job = slot.queue.pop_front().expect("non-empty by filter");
        st.queued -= 1;
        self.engine.queue_depth_dec();
        let now = Instant::now();
        if let Some(c) = st.controller.as_mut() {
            c.observe(now.saturating_duration_since(job.enqueued_at), now);
        }
        // Linear lease shrink: full budget at an empty queue, 1 at a
        // full one. `queued` is post-pop, so the last waiter still gets
        // more than the floor.
        let budget = self
            .base_budget
            .saturating_sub(self.base_budget * st.queued / self.capacity)
            .max(1);
        Some((job, budget))
    }

    fn admit(
        &self,
        st: &mut QueueState,
        session: usize,
        spec: StatementSpec,
        deadline: Option<Instant>,
    ) -> Receipt {
        let receipt = Arc::new(ReceiptState {
            slot: Mutex::new(None),
            done: Condvar::new(),
            submitted_at: Instant::now(),
        });
        let slot = &mut st.sessions[session];
        if slot.queue.is_empty() {
            // Re-activating after idling: join at the current clock.
            slot.vtime = slot.vtime.max(st.global_vtime);
        }
        slot.counters.submitted.fetch_add(1, Ordering::Relaxed);
        slot.queue.push_back(Job {
            spec,
            session,
            receipt: Arc::clone(&receipt),
            counters: Arc::clone(&slot.counters),
            bucket: slot.bucket.clone(),
            enqueued_at: Instant::now(),
            deadline,
        });
        st.queued += 1;
        self.engine.queue_depth_inc();
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.job_ready.notify_one();
        Receipt { state: receipt }
    }

    fn record_shed(&self, st: &QueueState, session: usize, kind: ShedKind) {
        let counters = &st.sessions[session].counters;
        // A shed attempt still counts as submitted, so
        // `submitted == served + shed + timed_out` holds at quiescence.
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        counters.shed.fetch_add(1, Ordering::Relaxed);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.engine.record_shed();
        match kind {
            ShedKind::Blunt => {}
            ShedKind::Adaptive => self.engine.record_adaptive_shed(),
            ShedKind::Quota => self.engine.record_quota_shed(),
        }
    }

    /// Quota gate: `Some(err)` if the session has a bucket and it is
    /// empty. Does not consume tokens — observed service time is debited
    /// after execution.
    fn quota_refused(&self, st: &QueueState, session: usize) -> bool {
        match &st.sessions[session].bucket {
            Some(bucket) => !bucket
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .admit(Instant::now()),
            None => false,
        }
    }

    fn submit(
        &self,
        session: usize,
        spec: StatementSpec,
        deadline: Option<Instant>,
    ) -> Result<Receipt, SubmitError> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(SubmitError::Shutdown);
        }
        if st.queued >= self.capacity {
            self.record_shed(&st, session, ShedKind::Blunt);
            return Err(SubmitError::QueueFull);
        }
        if self.quota_refused(&st, session) {
            self.record_shed(&st, session, ShedKind::Quota);
            return Err(SubmitError::QuotaExceeded);
        }
        if st.controller.as_mut().is_some_and(|c| c.should_shed()) {
            self.record_shed(&st, session, ShedKind::Adaptive);
            return Err(SubmitError::Overloaded);
        }
        Ok(self.admit(&mut st, session, spec, deadline))
    }

    fn submit_wait(
        &self,
        session: usize,
        spec: StatementSpec,
        deadline: Option<Instant>,
    ) -> Result<Receipt, SubmitError> {
        let mut st = self.lock();
        loop {
            if st.shutdown {
                return Err(SubmitError::Shutdown);
            }
            // Quota sheds immediately even on the blocking path: waiting
            // does not make a dry bucket another tenant's problem.
            if self.quota_refused(&st, session) {
                self.record_shed(&st, session, ShedKind::Quota);
                return Err(SubmitError::QuotaExceeded);
            }
            // No adaptive shed here: blocking on `space_ready` *is* the
            // backpressure the controller exists to create.
            if st.queued < self.capacity {
                return Ok(self.admit(&mut st, session, spec, deadline));
            }
            match deadline {
                None => {
                    st = self.space_ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        self.record_shed(&st, session, ShedKind::Blunt);
                        return Err(SubmitError::Timeout);
                    }
                    st = self
                        .space_ready
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------

/// Prefix a backend-reported failure with its serving origin. Only the
/// free-form [`VoodooError::Backend`] payload is touched: the structured
/// variants (unknown table, type mismatch, …) are matched on by callers
/// and already name their own culprit.
fn attribute_engine_error(e: VoodooError, origin: &str) -> VoodooError {
    match e {
        VoodooError::Backend(msg) => VoodooError::Backend(format!("[{origin}] {msg}")),
        other => other,
    }
}

fn worker_loop(shared: Arc<ServeShared>) {
    loop {
        let (job, budget) = {
            let mut st = shared.lock();
            loop {
                if let Some(next) = shared.dequeue(&mut st) {
                    break next;
                }
                if st.shutdown {
                    return;
                }
                st = shared.job_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        // A slot just opened: wake one blocked submitter.
        shared.space_ready.notify_one();

        let counters = &job.counters;

        // Deadline propagation: a statement whose deadline already
        // passed while queued is dead on arrival — drop it here instead
        // of spending service time nobody is waiting for.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            counters.timed_out.fetch_add(1, Ordering::Relaxed);
            shared.timed_out.fetch_add(1, Ordering::Relaxed);
            shared.engine.record_deadline_drop();
            job.receipt.fulfill(Err(ServeError::Timeout));
            continue;
        }

        // Intra-statement parallelism shrinks with queue depth: under
        // pressure the pool serves more statements, not each faster.
        voodoo_compile::exec::set_parallelism_budget(Some(budget));
        let started = Instant::now();
        shared.engine.cache_trace_begin();
        let outcome = catch_unwind(AssertUnwindSafe(|| shared.engine.run_spec(&job.spec)));
        let (hits, misses) = shared.engine.cache_trace_end();
        counters.cache_hits.fetch_add(hits, Ordering::Relaxed);
        counters.cache_misses.fetch_add(misses, Ordering::Relaxed);
        if let Some(bucket) = &job.bucket {
            bucket
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .debit(started.elapsed());
        }
        // Failures name their origin: in a multi-server topology (one
        // server per shard), `[shard-1/session-2]` in the message is what
        // makes a partial failure debuggable from the error alone.
        let origin = || format!("{}/session-{}", shared.label, job.session);
        let result = match outcome {
            Ok(Ok(output)) => Ok(output),
            Ok(Err(e)) => Err(ServeError::Engine(attribute_engine_error(e, &origin()))),
            Err(panic) => {
                // The statement never reached its own metrics record;
                // count the failure here so the failure rate covers
                // panics too.
                shared.engine.record_execution(started, false);
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(ServeError::WorkerPanic(format!("[{}] {msg}", origin())))
            }
        };
        counters.served.fetch_add(1, Ordering::Relaxed);
        shared.served.fetch_add(1, Ordering::Relaxed);
        shared
            .engine
            .record_sojourn(job.receipt.submitted_at.elapsed());
        job.receipt.fulfill(result);
    }
}

// ---------------------------------------------------------------------
// Public handles
// ---------------------------------------------------------------------

/// Aggregate serving counters for one [`ServerHandle`].
///
/// Every submission terminates in exactly one bucket:
/// `submitted == served + shed + timed_out` once the server quiesces
/// (queue drained, no in-flight statements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Statements submitted since the server started — admitted **or**
    /// shed (every attempt).
    pub submitted: u64,
    /// Statements executed to completion.
    pub served: u64,
    /// Statements refused admission (queue full, admission-wait expiry,
    /// adaptive controller, or quota).
    pub shed: u64,
    /// Admitted statements dropped at dequeue on an expired propagated
    /// deadline.
    pub timed_out: u64,
    /// Admitted statements currently waiting for a worker.
    pub queue_depth: usize,
    /// The admission bound.
    pub capacity: usize,
    /// Worker-pool size.
    pub workers: usize,
}

/// The serving front door over one shared [`Engine`]: accepts
/// [`StatementSpec`]s from any thread, sheds on overload, and drains
/// through a fixed worker pool in weighted-fair session order.
///
/// Dropping the handle shuts the pool down gracefully (queued work is
/// drained first); [`ServerHandle::shutdown`] does the same explicitly.
pub struct ServerHandle {
    shared: Arc<ServeShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    worker_count: usize,
}

impl ServerHandle {
    pub(crate) fn start(engine: Arc<Engine>, config: ServeConfig) -> ServerHandle {
        let capacity = config.queue_capacity.max(1);
        let worker_count = config.workers.max(1);
        // Lease the machine between the admission pool and the shared
        // morsel pool: each serve worker carries a parallelism budget
        // (default `cores / workers`), which caps how many morsel
        // workers a statement's `Parallelism::Auto` (and even
        // `Fixed(n)`) resolves to — i.e. how many slots of the engine's
        // persistent work-stealing pool it *offers* work for. The pool's
        // own worker count bounds what actually runs at once, so a
        // saturated serve pool composes to the machine instead of
        // `workers × cores` — and no statement spawns threads of its own
        // anymore. The effective lease shrinks with queue depth (see
        // `ServeShared::dequeue`).
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let base_budget = config.intra_budget.unwrap_or(cores / worker_count).max(1);
        let shared = Arc::new(ServeShared {
            engine,
            label: config.label.clone().unwrap_or_else(|| "serve".to_string()),
            capacity,
            base_budget,
            state: Mutex::new(QueueState {
                // Session 0 backs the handle-level submit helpers.
                sessions: vec![SessionSlot {
                    weight: 1,
                    vtime: 0,
                    queue: VecDeque::new(),
                    counters: Arc::new(SessionCounters::default()),
                    bucket: None,
                }],
                queued: 0,
                global_vtime: 0,
                controller: config
                    .overload
                    .map(|cfg| Controller::new(cfg, Instant::now())),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            space_ready: Condvar::new(),
            submitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("voodoo-serve-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn serve worker")
            })
            .collect();
        ServerHandle {
            shared,
            workers: Mutex::new(workers),
            worker_count,
        }
    }

    /// Open a weighted serving session. Weights are relative: under
    /// saturation a session receives `weight / total_weight` of the
    /// worker pool's attention; FIFO order holds within a session.
    pub fn session(&self, weight: u32) -> ServeSession {
        self.open_session(weight, None)
    }

    /// Open a weighted session with a service-time quota: a token
    /// bucket holding `quota.burst` seconds of service, refilled at
    /// `quota.rate` seconds-per-second, debited by the *observed*
    /// execution time of each statement. An empty bucket sheds the
    /// session's submissions ([`SubmitError::QuotaExceeded`]) — on the
    /// blocking path too — while other tenants keep their latency.
    pub fn session_with_quota(&self, weight: u32, quota: Quota) -> ServeSession {
        self.open_session(
            weight,
            Some(Arc::new(Mutex::new(TokenBucket::new(
                quota,
                Instant::now(),
            )))),
        )
    }

    fn open_session(&self, weight: u32, bucket: Option<SharedBucket>) -> ServeSession {
        let counters = Arc::new(SessionCounters::default());
        let mut st = self.shared.lock();
        let idx = st.sessions.len();
        let vtime = st.global_vtime;
        st.sessions.push(SessionSlot {
            weight: weight.max(1) as u64,
            vtime,
            queue: VecDeque::new(),
            counters: Arc::clone(&counters),
            bucket: bucket.clone(),
        });
        drop(st);
        ServeSession {
            shared: Arc::clone(&self.shared),
            idx,
            counters,
            bucket,
        }
    }

    /// Non-blocking admission on the handle's built-in session 0; a full
    /// queue sheds ([`SubmitError::QueueFull`]).
    pub fn submit(&self, spec: StatementSpec) -> Result<Receipt, SubmitError> {
        self.shared.submit(0, spec, None)
    }

    /// Blocking admission on session 0: waits for queue space until the
    /// optional deadline ([`SubmitError::Timeout`] on expiry). The
    /// deadline also propagates into execution: if it expires while the
    /// admitted statement is still queued, the worker drops it at
    /// dequeue ([`ServeError::Timeout`]).
    pub fn submit_wait(
        &self,
        spec: StatementSpec,
        deadline: Option<Instant>,
    ) -> Result<Receipt, SubmitError> {
        self.shared.submit_wait(0, spec, deadline)
    }

    /// Current shed probability of the adaptive admission controller
    /// (0.0 when overload control is disabled or the queue is healthy).
    pub fn shed_probability(&self) -> f64 {
        self.shared
            .lock()
            .controller
            .as_ref()
            .map_or(0.0, |c| c.shed_probability())
    }

    /// Static diagnostics for a spec, synchronously and without taking a
    /// queue slot — a pre-admission check that a statement will pass every
    /// backend's prepare-time analyzer. See [`Engine::verify_spec`].
    pub fn verify(&self, spec: &StatementSpec) -> Vec<Diagnostic> {
        self.shared.engine.verify_spec(spec)
    }

    /// Aggregate serving counters.
    pub fn stats(&self) -> ServeStats {
        let queue_depth = self.shared.lock().queued;
        ServeStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            served: self.shared.served.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            timed_out: self.shared.timed_out.load(Ordering::Relaxed),
            queue_depth,
            capacity: self.shared.capacity,
            workers: self.worker_count,
        }
    }

    /// Admitted statements currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().queued
    }

    /// Stop accepting work, drain the queue, and join the workers.
    /// Already-admitted statements still execute; blocked submitters get
    /// [`SubmitError::Shutdown`]. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        self.shared.space_ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A weighted admission handle onto a [`ServerHandle`]. Cheap to clone;
/// safe to share across threads.
#[derive(Clone)]
pub struct ServeSession {
    shared: Arc<ServeShared>,
    idx: usize,
    /// Captured at creation so [`ServeSession::stats`] never touches the
    /// admission-queue lock (the counters are plain atomics).
    counters: Arc<SessionCounters>,
    /// The session's quota bucket, if opened with
    /// [`ServerHandle::session_with_quota`].
    bucket: Option<SharedBucket>,
}

impl ServeSession {
    /// Non-blocking admission; a full queue sheds the request
    /// ([`SubmitError::QueueFull`]) and bumps the shed counters. With
    /// overload control enabled the adaptive controller may also shed
    /// ([`SubmitError::Overloaded`]); a dry quota bucket sheds with
    /// [`SubmitError::QuotaExceeded`].
    pub fn submit(&self, spec: StatementSpec) -> Result<Receipt, SubmitError> {
        self.shared.submit(self.idx, spec, None)
    }

    /// Non-blocking admission with a propagated completion deadline: if
    /// it expires while the statement is still queued, the worker drops
    /// it at dequeue ([`ServeError::Timeout`], counted in
    /// [`SessionServeStats::timed_out`]) instead of executing it.
    pub fn submit_deadline(
        &self,
        spec: StatementSpec,
        deadline: Instant,
    ) -> Result<Receipt, SubmitError> {
        self.shared.submit(self.idx, spec, Some(deadline))
    }

    /// Blocking admission: waits for queue space until the optional
    /// deadline; expiry returns [`SubmitError::Timeout`], never a hang.
    /// The deadline also propagates into execution (see
    /// [`ServeSession::submit_deadline`]).
    pub fn submit_wait(
        &self,
        spec: StatementSpec,
        deadline: Option<Instant>,
    ) -> Result<Receipt, SubmitError> {
        self.shared.submit_wait(self.idx, spec, deadline)
    }

    /// This session's error-attribution origin, `<label>/session-<n>` —
    /// the prefix its execution failures carry.
    pub fn origin(&self) -> String {
        format!("{}/session-{}", self.shared.label, self.idx)
    }

    /// Seconds of service time left in this session's quota bucket
    /// (`None` for unlimited sessions).
    pub fn quota_balance(&self) -> Option<f64> {
        self.bucket
            .as_ref()
            .map(|b| b.lock().unwrap_or_else(|e| e.into_inner()).balance())
    }

    /// This session's cumulative serving counters (lock-free: the
    /// counters are atomics captured at session creation).
    pub fn stats(&self) -> SessionServeStats {
        self.counters.snapshot()
    }

    /// Static diagnostics for a spec, synchronously and without taking a
    /// queue slot. See [`ServerHandle::verify`].
    pub fn verify(&self, spec: &StatementSpec) -> Vec<Diagnostic> {
        self.shared.engine.verify_spec(spec)
    }
}
