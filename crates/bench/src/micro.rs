//! Microbenchmark workloads and program variants (Figures 1, 14, 15, 16).
//!
//! For every technique the paper studies, this module provides both the
//! hand-written Rust implementation (the paper's "Implemented in C"
//! series) and the Voodoo program expressing the same technique, built the
//! way §5.3 describes (one operator / one flag of difference per variant).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use voodoo_core::{BinOp, KeyPath, Program};
use voodoo_storage::{Catalog, Table, TableColumn};

fn kp(s: &str) -> KeyPath {
    KeyPath::new(s)
}

// ---------------------------------------------------------------------
// Selection workloads (Figures 1 and 15)
// ---------------------------------------------------------------------

/// A catalog with one i64 column `vals.val`, uniform in `[0, 10000)`.
pub fn selection_catalog(n: usize, seed: u64) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("vals", &vals);
    cat
}

/// The predicate constant realizing a given selectivity in `[0, 1]`.
pub fn cutoff(selectivity: f64) -> i64 {
    (selectivity.clamp(0.0, 1.0) * 10_000.0) as i64
}

/// Figure 1 program: filter the column, materializing the selected values.
/// Branching vs branch-free is the backend's predication flag.
pub fn prog_filter_materialize(c: i64) -> Program {
    let mut p = Program::new();
    let v = p.load("vals");
    let pred = p.binary_const(BinOp::Less, v, kp(".val"), c, kp(".val"));
    let sel = p.fold_select_global(pred);
    let out = p.gather(v, sel);
    p.ret(out);
    p
}

/// Figure 15 "Branching": fused select → gather → sum (an `if` per item).
pub fn prog_select_sum_branching(c: i64) -> Program {
    let mut p = Program::new();
    let v = p.load("vals");
    let pred = p.binary_const(BinOp::Less, v, kp(".val"), c, kp(".val"));
    let sel = p.fold_select_global(pred);
    let vals = p.gather(v, sel);
    let sum = p.fold_sum_global(vals);
    p.ret(sum);
    p
}

/// Figure 15 "Branch-Free": predication — `sum(v · (v < c))`.
pub fn prog_select_sum_predicated(c: i64) -> Program {
    let mut p = Program::new();
    let v = p.load("vals");
    let pred = p.binary_const(BinOp::Less, v, kp(".val"), c, kp(".val"));
    let masked = p.mul(v, pred);
    let sum = p.fold_sum_global(masked);
    p.ret(sum);
    p
}

/// Figure 15 "Vectorized (BF)": one extra control vector turns the select
/// into cache-sized chunks with a branch-free position buffer.
pub fn prog_select_sum_vectorized(c: i64, chunk: usize) -> Program {
    let mut p = Program::new();
    let v = p.load("vals");
    let pred = p.binary_const(BinOp::Less, v, kp(".val"), c, kp(".val"));
    let ids = p.range_like(0, v, 1);
    let chunks = p.div_const(ids, chunk as i64);
    let sel = p.fold_select(chunks, pred);
    let vals = p.gather(v, sel);
    let sum = p.fold_sum_global(vals);
    p.ret(sum);
    p
}

/// Hand-written branching selection sum.
pub fn c_select_sum_branching(vals: &[i64], c: i64) -> i64 {
    let mut sum = 0i64;
    for &v in vals {
        if v < c {
            sum += v;
        }
    }
    sum
}

/// Hand-written predicated selection sum.
pub fn c_select_sum_predicated(vals: &[i64], c: i64) -> i64 {
    let mut sum = 0i64;
    for &v in vals {
        sum += v * ((v < c) as i64);
    }
    sum
}

/// Hand-written vectorized (branch-free position buffer) selection sum.
pub fn c_select_sum_vectorized(vals: &[i64], c: i64, chunk: usize) -> i64 {
    let mut buf = vec![0usize; chunk];
    let mut sum = 0i64;
    let mut start = 0usize;
    while start < vals.len() {
        let end = (start + chunk).min(vals.len());
        let mut cnt = 0usize;
        for (i, &v) in vals[start..end].iter().enumerate() {
            buf[cnt] = start + i;
            cnt += (v < c) as usize;
        }
        for &pos in &buf[..cnt] {
            sum += vals[pos];
        }
        start = end;
    }
    sum
}

/// Hand-written branching filter (Figure 1): compact qualifying values.
pub fn c_filter_branching(vals: &[i64], c: i64, out: &mut Vec<i64>) {
    out.clear();
    for &v in vals {
        if v < c {
            out.push(v);
        }
    }
}

/// Hand-written branch-free filter (Figure 1): cursor arithmetic
/// (Ross-style predication, the paper's reference \[28\]).
pub fn c_filter_predicated(vals: &[i64], c: i64, out: &mut [i64]) -> usize {
    let mut cursor = 0usize;
    for &v in vals {
        out[cursor] = v;
        cursor += (v < c) as usize;
    }
    cursor
}

// ---------------------------------------------------------------------
// Selective foreign-key join (Figure 16)
// ---------------------------------------------------------------------

/// Catalog with `fact` (columns `v`, `fk`) and `target` (column `val`).
pub fn fkjoin_catalog(n_fact: usize, n_target: usize, seed: u64) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cat = Catalog::in_memory();
    let mut fact = Table::new("fact");
    fact.add_column(TableColumn::from_buffer(
        "v",
        voodoo_core::Buffer::I64((0..n_fact).map(|_| rng.gen_range(0..100)).collect()),
    ));
    fact.add_column(TableColumn::from_buffer(
        "fk",
        voodoo_core::Buffer::I64(
            (0..n_fact)
                .map(|_| rng.gen_range(0..n_target as i64))
                .collect(),
        ),
    ));
    cat.insert_table(fact);
    cat.put_i64_column(
        "target",
        &(0..n_target)
            .map(|_| rng.gen_range(0..1000))
            .collect::<Vec<_>>(),
    );
    cat
}

/// Figure 16 "Branching": select qualifying rows, then look up and sum.
pub fn prog_fk_branching(c: i64) -> Program {
    let mut p = Program::new();
    let fact = p.load("fact");
    let target = p.load("target");
    let pred = p.binary_const(BinOp::Less, fact, kp(".v"), c, kp(".val"));
    let sel = p.fold_select_global(pred);
    let hits = p.gather(fact, sel);
    let looked = p.gather_kp(target, hits, ".fk");
    let sum = p.fold_sum_global(looked);
    p.ret(sum);
    p
}

/// Figure 16 "Predicated Aggregation": unconditional lookups, result
/// multiplied by the predicate.
pub fn prog_fk_predicated_agg(c: i64) -> Program {
    let mut p = Program::new();
    let fact = p.load("fact");
    let target = p.load("target");
    let pred = p.binary_const(BinOp::Less, fact, kp(".v"), c, kp(".val"));
    let looked = p.gather_kp(target, fact, ".fk");
    let masked = p.mul(looked, pred);
    let sum = p.fold_sum_global(masked);
    p.ret(sum);
    p
}

/// Figure 16 "Predicated Lookups": multiply the *position* by the
/// predicate first, so misses hit one hot cache line at slot 0.
pub fn prog_fk_predicated_lookups(c: i64) -> Program {
    let mut p = Program::new();
    let fact = p.load("fact");
    let target = p.load("target");
    let pred = p.binary_const(BinOp::Less, fact, kp(".v"), c, kp(".val"));
    let pos = p.binary_kp(
        BinOp::Multiply,
        fact,
        kp(".fk"),
        pred,
        kp(".val"),
        kp(".val"),
    );
    let looked = p.gather(target, pos);
    let masked = p.mul(looked, pred);
    let sum = p.fold_sum_global(masked);
    p.ret(sum);
    p
}

/// Hand-written Figure 16 variants; `which` = 0 branching, 1 predicated
/// aggregation, 2 predicated lookups.
pub fn c_fk_join(v: &[i64], fk: &[i64], target: &[i64], c: i64, which: u8) -> i64 {
    let mut sum = 0i64;
    match which {
        0 => {
            for i in 0..v.len() {
                if v[i] < c {
                    sum += target[fk[i] as usize];
                }
            }
        }
        1 => {
            for i in 0..v.len() {
                let p = (v[i] < c) as i64;
                sum += target[fk[i] as usize] * p;
            }
        }
        _ => {
            for i in 0..v.len() {
                let p = (v[i] < c) as i64;
                sum += target[(fk[i] * p) as usize] * p;
            }
        }
    }
    sum
}

// ---------------------------------------------------------------------
// Just-in-time layout transformation (Figure 14)
// ---------------------------------------------------------------------

/// Access patterns of Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Sequential positions.
    Sequential,
    /// Random positions into a cache-resident (≈4MB) target.
    Random4Mb,
    /// Random positions into a memory-resident (≈128MB) target.
    Random128Mb,
}

impl Pattern {
    /// All patterns in figure order.
    pub fn all() -> [Pattern; 3] {
        [
            Pattern::Sequential,
            Pattern::Random4Mb,
            Pattern::Random128Mb,
        ]
    }

    /// Label used in figure rows.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Sequential => "Sequential",
            Pattern::Random4Mb => "Random 4MB",
            Pattern::Random128Mb => "Random 128MB",
        }
    }

    /// Target row count: 2 columns × 8 bytes per row.
    pub fn target_rows(self, large_rows: usize) -> usize {
        match self {
            Pattern::Sequential | Pattern::Random128Mb => large_rows,
            // 4MB at 16 bytes/row.
            Pattern::Random4Mb => (4 << 20) / 16,
        }
    }
}

/// Catalog with `target2` (columns `c1`, `c2`) and `positions.val`.
pub fn layout_catalog(n_pos: usize, target_rows: usize, random: bool, seed: u64) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cat = Catalog::in_memory();
    let mut t = Table::new("target2");
    t.add_column(TableColumn::from_buffer(
        "c1",
        voodoo_core::Buffer::I64((0..target_rows as i64).collect()),
    ));
    t.add_column(TableColumn::from_buffer(
        "c2",
        voodoo_core::Buffer::I64((0..target_rows as i64).map(|x| x * 3).collect()),
    ));
    cat.insert_table(t);
    let pos: Vec<i64> = if random {
        (0..n_pos)
            .map(|_| rng.gen_range(0..target_rows as i64))
            .collect()
    } else {
        (0..n_pos as i64).map(|i| i % target_rows as i64).collect()
    };
    cat.put_i64_column("positions", &pos);
    cat
}

/// Figure 14 "Single Loop": one traversal resolving both columns.
pub fn prog_layout_single() -> Program {
    let mut p = Program::new();
    let t = p.load("target2");
    let pos = p.load("positions");
    let g = p.gather(t, pos);
    let s1 = p.fold_agg_kp(voodoo_core::AggKind::Sum, g, None, kp(".c1"), kp(".s1"));
    let s2 = p.fold_agg_kp(voodoo_core::AggKind::Sum, g, None, kp(".c2"), kp(".s2"));
    p.ret(s1);
    p.ret(s2);
    p
}

/// Figure 14 "Separate Loops": a `Break` between the two gathers splits
/// the traversals (the paper's one-operator tuning change).
pub fn prog_layout_separate() -> Program {
    let mut p = Program::new();
    let t = p.load("target2");
    let pos = p.load("positions");
    let g1 = p.gather(t, pos);
    let s1 = p.fold_agg_kp(voodoo_core::AggKind::Sum, g1, None, kp(".c1"), kp(".s1"));
    let brk = p.break_at(pos);
    let g2 = p.gather(t, brk);
    let s2 = p.fold_agg_kp(voodoo_core::AggKind::Sum, g2, None, kp(".c2"), kp(".s2"));
    p.ret(s1);
    p.ret(s2);
    p
}

/// Figure 14 "Layout Transform": `Zip` + `Materialize` build a row-wise
/// copy just in time; both lookups then share each tuple's cache line.
pub fn prog_layout_transform() -> Program {
    let mut p = Program::new();
    let t = p.load("target2");
    let pos = p.load("positions");
    let z = p.zip_kp(kp(".c1"), t, kp(".c1"), kp(".c2"), t, kp(".c2"));
    let m = p.materialize(z);
    let g2 = p.gather(m, pos);
    let s1 = p.fold_agg_kp(voodoo_core::AggKind::Sum, g2, None, kp(".c1"), kp(".s1"));
    let s2 = p.fold_agg_kp(voodoo_core::AggKind::Sum, g2, None, kp(".c2"), kp(".s2"));
    p.ret(s1);
    p.ret(s2);
    p
}

/// Hand-written Figure 14 variants; `which` = 0 single, 1 separate,
/// 2 transform (with a genuinely interleaved row-wise copy).
pub fn c_layout(c1: &[i64], c2: &[i64], pos: &[i64], which: u8) -> (i64, i64) {
    match which {
        0 => {
            let (mut s1, mut s2) = (0i64, 0i64);
            for &p in pos {
                s1 += c1[p as usize];
                s2 += c2[p as usize];
            }
            (s1, s2)
        }
        1 => {
            let mut s1 = 0i64;
            for &p in pos {
                s1 += c1[p as usize];
            }
            let mut s2 = 0i64;
            for &p in pos {
                s2 += c2[p as usize];
            }
            (s1, s2)
        }
        _ => {
            // Just-in-time transform to row-wise (AoS) layout.
            let rows: Vec<[i64; 2]> = c1.iter().zip(c2).map(|(&a, &b)| [a, b]).collect();
            let (mut s1, mut s2) = (0i64, 0i64);
            for &p in pos {
                let r = rows[p as usize];
                s1 += r[0];
                s2 += r[1];
            }
            (s1, s2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voodoo_compile::exec::{ExecOptions, Executor};
    use voodoo_compile::Compiler;
    use voodoo_core::ScalarValue;

    fn run(cat: &Catalog, p: &Program, predicated: bool) -> i64 {
        let cp = Compiler::new(cat).compile(p).unwrap();
        let exec = Executor::new(ExecOptions {
            predicated_select: predicated,
            ..Default::default()
        });
        let (out, _) = exec.run(&cp, cat).unwrap();
        out.returns[0]
            .value_at(0, &KeyPath::val())
            .map(|v| v.as_i64())
            .unwrap_or(0)
    }

    #[test]
    fn selection_variants_agree_with_c() {
        let cat = selection_catalog(5000, 7);
        let vals: Vec<i64> = cat
            .table("vals")
            .unwrap()
            .column("val")
            .unwrap()
            .data
            .buffer()
            .as_i64()
            .unwrap()
            .to_vec();
        for sel in [0.01, 0.5, 0.99] {
            let c = cutoff(sel);
            let expected = c_select_sum_branching(&vals, c);
            assert_eq!(c_select_sum_predicated(&vals, c), expected);
            assert_eq!(c_select_sum_vectorized(&vals, c, 256), expected);
            assert_eq!(run(&cat, &prog_select_sum_branching(c), false), expected);
            assert_eq!(run(&cat, &prog_select_sum_predicated(c), false), expected);
            assert_eq!(
                run(&cat, &prog_select_sum_vectorized(c, 256), false),
                expected
            );
            assert_eq!(
                run(&cat, &prog_select_sum_vectorized(c, 256), true),
                expected
            );
        }
    }

    #[test]
    fn filter_variants_agree() {
        let cat = selection_catalog(2000, 9);
        let vals: Vec<i64> = cat
            .table("vals")
            .unwrap()
            .column("val")
            .unwrap()
            .data
            .buffer()
            .as_i64()
            .unwrap()
            .to_vec();
        let c = cutoff(0.3);
        let mut out_b = Vec::new();
        c_filter_branching(&vals, c, &mut out_b);
        let mut out_p = vec![0i64; vals.len() + 1];
        let cnt = c_filter_predicated(&vals, c, &mut out_p);
        assert_eq!(out_b, out_p[..cnt]);

        // Voodoo materialized filter returns the same multiset.
        let p = prog_filter_materialize(c);
        let cp = Compiler::new(&cat).compile(&p).unwrap();
        let (out, _) = Executor::single_threaded().run(&cp, &cat).unwrap();
        let got: Vec<i64> = out.returns[0]
            .column(&KeyPath::val())
            .unwrap()
            .present()
            .map(|v| v.as_i64())
            .collect();
        assert_eq!(got, out_b);
    }

    #[test]
    fn fk_variants_agree_with_c() {
        let cat = fkjoin_catalog(4000, 512, 3);
        let fact = cat.table("fact").unwrap();
        let v = fact
            .column("v")
            .unwrap()
            .data
            .buffer()
            .as_i64()
            .unwrap()
            .to_vec();
        let fk = fact
            .column("fk")
            .unwrap()
            .data
            .buffer()
            .as_i64()
            .unwrap()
            .to_vec();
        let target = cat
            .table("target")
            .unwrap()
            .column("val")
            .unwrap()
            .data
            .buffer()
            .as_i64()
            .unwrap()
            .to_vec();
        for c in [5i64, 50, 95] {
            let expected = c_fk_join(&v, &fk, &target, c, 0);
            assert_eq!(c_fk_join(&v, &fk, &target, c, 1), expected);
            assert_eq!(c_fk_join(&v, &fk, &target, c, 2), expected);
            assert_eq!(run(&cat, &prog_fk_branching(c), false), expected);
            assert_eq!(run(&cat, &prog_fk_predicated_agg(c), false), expected);
            assert_eq!(run(&cat, &prog_fk_predicated_lookups(c), false), expected);
        }
    }

    #[test]
    fn layout_variants_agree_with_c() {
        for random in [false, true] {
            let cat = layout_catalog(3000, 1024, random, 11);
            let t = cat.table("target2").unwrap();
            let c1 = t
                .column("c1")
                .unwrap()
                .data
                .buffer()
                .as_i64()
                .unwrap()
                .to_vec();
            let c2 = t
                .column("c2")
                .unwrap()
                .data
                .buffer()
                .as_i64()
                .unwrap()
                .to_vec();
            let pos = cat
                .table("positions")
                .unwrap()
                .column("val")
                .unwrap()
                .data
                .buffer()
                .as_i64()
                .unwrap()
                .to_vec();
            let expected = c_layout(&c1, &c2, &pos, 0);
            assert_eq!(c_layout(&c1, &c2, &pos, 1), expected);
            assert_eq!(c_layout(&c1, &c2, &pos, 2), expected);
            for prog in [
                prog_layout_single(),
                prog_layout_separate(),
                prog_layout_transform(),
            ] {
                let cp = Compiler::new(&cat).compile(&prog).unwrap();
                let (out, _) = Executor::single_threaded().run(&cp, &cat).unwrap();
                let s1 = out.returns[0]
                    .value_at(0, &kp(".s1"))
                    .map(|x| x.as_i64())
                    .unwrap_or(0);
                let s2 = out.returns[1]
                    .value_at(0, &kp(".s2"))
                    .map(|x| x.as_i64())
                    .unwrap_or(0);
                assert_eq!((s1, s2), expected);
            }
        }
    }

    #[test]
    fn separate_loops_has_more_fragments_than_single() {
        let cat = layout_catalog(100, 64, false, 1);
        let single = Compiler::new(&cat).compile(&prog_layout_single()).unwrap();
        let separate = Compiler::new(&cat)
            .compile(&prog_layout_separate())
            .unwrap();
        assert!(
            separate.fragment_count() > single.fragment_count(),
            "Break splits the pipeline: {} vs {}",
            separate.fragment_count(),
            single.fragment_count()
        );
    }

    #[test]
    fn fig1_branch_free_flag_changes_profile_not_result() {
        let cat = selection_catalog(2000, 5);
        let p = prog_filter_materialize(cutoff(0.5));
        let cp = Compiler::new(&cat).compile(&p).unwrap();
        let b = Executor::new(ExecOptions {
            count_events: true,
            ..Default::default()
        });
        let f = Executor::new(ExecOptions {
            count_events: true,
            predicated_select: true,
            ..Default::default()
        });
        let (ob, pb) = b.run(&cp, &cat).unwrap();
        let (of, pf) = f.run(&cp, &cat).unwrap();
        assert_eq!(ob.returns[0], of.returns[0]);
        assert!(pb.branches > 0);
        assert_eq!(pf.branches, 0);
    }

    #[test]
    fn sanity_scalar_values_not_epsilon() {
        let cat = selection_catalog(100, 2);
        let p = prog_select_sum_branching(cutoff(1.0));
        let cp = Compiler::new(&cat).compile(&p).unwrap();
        let (out, _) = Executor::single_threaded().run(&cp, &cat).unwrap();
        assert!(matches!(
            out.returns[0].value_at(0, &KeyPath::val()),
            Some(ScalarValue::I64(_))
        ));
    }
}
