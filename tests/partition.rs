//! Morsel-driven partitioned execution: correctness pins.
//!
//! The contract under test: for ANY partition count `P`, the compiled
//! CPU backend's partition-parallel execution is **bit-identical** to
//! the serial paths — the interpreter (the reference oracle) and the
//! `Parallelism::Off` compiled configuration — for every TPC-H query
//! and the SQL aggregate set, plus the partition-boundary edge cases
//! (empty inputs, `P > rows`, all-sentinel groups).
//!
//! Since the persistent pool landed, partition-parallel kernels execute
//! on long-lived work-stealing workers ([`voodoo::compile::pool`])
//! instead of scoped per-unit spawns; the same bit-identity contract
//! holds no matter which worker ran which morsel, and this suite
//! additionally pins the pool's scheduling behavior (skew rebalanced by
//! stealing, clean shutdown/restart, engine pool lifecycle).
//!
//! CI runs this suite in release mode with `VOODOO_SCALE_THREADS=2` and
//! `=8`, which widens the exercised `P` set.

use std::sync::Arc;

use voodoo::backend::{CpuBackend, Parallelism};
use voodoo::compile::exec::ExecOptions;
use voodoo::compile::pool::MorselPool;
use voodoo::core::{KeyPath, Program};
use voodoo::relational::{Session, StatementSpec};
use voodoo::storage::Catalog;
use voodoo::tpch::queries::CPU_QUERIES;

const SQL_QUERIES: [&str; 6] = [
    "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
     WHERE l_shipdate >= 700 AND l_shipdate < 1100 AND l_quantity < 24",
    "SELECT COUNT(*) FROM lineitem",
    "SELECT l_returnflag, SUM(l_quantity), COUNT(*) FROM lineitem GROUP BY l_returnflag",
    "SELECT l_linestatus, MIN(l_extendedprice), MAX(l_extendedprice) \
     FROM lineitem WHERE l_discount BETWEEN 2 AND 8 GROUP BY l_linestatus",
    "SELECT AVG(l_quantity), MIN(l_shipdate), MAX(l_shipdate) FROM lineitem \
     WHERE l_quantity >= 10",
    "SELECT MIN(l_quantity), MAX(l_quantity) FROM lineitem WHERE l_quantity < 0",
];

/// A partition-eager CPU backend: fixed P, no minimum-domain gate, so
/// even tiny inputs take the morsel path.
fn cpu_p(p: usize) -> CpuBackend {
    CpuBackend::new(ExecOptions {
        parallelism: Parallelism::Fixed(p),
        min_parallel_domain: 1,
        ..ExecOptions::default()
    })
}

/// The partition counts under test: a few fixed fan-outs plus the CI
/// matrix override (`VOODOO_SCALE_THREADS`).
fn partition_counts() -> Vec<usize> {
    let mut counts = vec![2, 3, 5, 8];
    if let Ok(v) = std::env::var("VOODOO_SCALE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

#[test]
fn tpch_and_sql_bit_identical_across_partition_counts() {
    let session = Session::tpch(0.01);
    for p in partition_counts() {
        let name = format!("cpu-p{p}");
        session.register(&name, Arc::new(cpu_p(p)));
        for q in CPU_QUERIES {
            let stmt = session.query(q);
            let oracle = stmt.run_on("interp").expect("interp oracle");
            let serial = stmt.run_on("cpu").expect("cpu");
            let parallel = stmt.run_on(&name).expect("partitioned cpu");
            assert_eq!(oracle.rows(), serial.rows(), "{} serial", q.name());
            assert_eq!(
                serial.rows(),
                parallel.rows(),
                "{} must be bit-identical at P={p}",
                q.name()
            );
        }
        for sql in SQL_QUERIES {
            let stmt = session.sql(sql).expect("parse");
            let oracle = stmt.run_on("interp").expect("interp oracle");
            let parallel = stmt.run_on(&name).expect("partitioned cpu");
            assert_eq!(oracle.rows(), parallel.rows(), "{sql:?} at P={p}");
        }
    }
}

/// Proptest-style sweep: every P in 1..=17 (beyond any morsel-count the
/// fixed set covers, including P ≫ natural chunk counts) over raw
/// algebra programs that hit each partition-parallel kernel — global
/// fold, selection emission, vectorized-selection, grouped aggregation
/// and the scatter build side.
#[test]
fn any_partition_count_matches_serial_on_kernel_programs() {
    let mut cat = Catalog::in_memory();
    // Data with duplicates, negatives, and a non-multiple-of-P length.
    let vals: Vec<i64> = (0..10_007).map(|i| (i * 37 + 11) % 1000 - 500).collect();
    cat.put_i64_column("t", &vals);
    let session = Session::new(cat);

    let mut programs: Vec<(&str, Program)> = Vec::new();
    // Global fold (Single-run fragment).
    let mut p = Program::new();
    let t = p.load("t");
    let s = p.fold_sum_global(t);
    p.ret(s);
    programs.push(("fold_sum", p));
    // Selection position emission + gather + fold.
    let mut p = Program::new();
    let t = p.load("t");
    let pred = p.greater_const(t, 0);
    let sel = p.fold_select_global(pred);
    let picked = p.gather(t, sel);
    let sum = p.fold_sum_global(picked);
    p.ret(sel);
    p.ret(sum);
    programs.push(("select_gather_sum", p));
    // Grouped aggregation (Partition → Scatter → Fold; the fused
    // virtual-scatter kernel with per-partition partial tables).
    programs.push((
        "grouped_sum_count",
        voodoo::algos::aggregate::grouped_sum_count("t", "val", "val", 1000),
    ));
    // Hierarchical sum (Uniform runs — chunked fan-out).
    programs.push((
        "hierarchical_sum",
        voodoo::algos::aggregate::hierarchical_sum(
            "t",
            voodoo::algos::FoldStrategy::Partitions { size: 64 },
        ),
    ));

    for (label, program) in &programs {
        let serial = session
            .program(program.clone())
            .run_on("interp")
            .expect("oracle");
        for p in 1..=17usize {
            let name = format!("cpu-sweep-{p}");
            session.register(&name, Arc::new(cpu_p(p)));
            let parallel = session
                .program(program.clone())
                .run_on(&name)
                .expect("partitioned");
            assert_eq!(
                serial.raw().returns,
                parallel.raw().returns,
                "{label} must be bit-identical at P={p}"
            );
        }
    }
}

#[test]
fn empty_inputs_and_p_beyond_rows_are_safe() {
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("empty", &[]);
    cat.put_i64_column("tiny", &[7, -3, 12]);
    let session = Session::new(cat);
    session.register("cpu-p8", Arc::new(cpu_p(8)));

    for table in ["empty", "tiny"] {
        let mut p = Program::new();
        let t = p.load(table);
        let pred = p.greater_const(t, 0);
        let sel = p.fold_select_global(pred);
        let sum = p.fold_sum_global(t);
        p.ret(sel);
        p.ret(sum);
        let stmt = session.program(p);
        let oracle = stmt.run_on("interp").expect("interp");
        let parallel = stmt.run_on("cpu-p8").expect("P > rows");
        assert_eq!(oracle.raw().returns, parallel.raw().returns, "{table}");
    }
}

#[test]
fn all_sentinel_partitions_match_serial() {
    // Sentinel-heavy aggregates: columns whose SQL-lowered folds see
    // i64::MIN/MAX sentinels in every partition, and a selection that
    // rejects every row (so each morsel emits an empty prefix).
    let mut cat = Catalog::in_memory();
    let n = 9_001usize;
    cat.put_i64_column("s", &vec![i64::MIN; n]);
    cat.put_i64_column("mixed", &(0..n as i64).collect::<Vec<_>>());
    let session = Session::new(cat);
    session.register("cpu-p5", Arc::new(cpu_p(5)));

    // Min/max over the all-sentinel column.
    let mut p = Program::new();
    let s = p.load("s");
    let mn = p.fold_min_global(s);
    let mx = p.fold_max_global(s);
    p.ret(mn);
    p.ret(mx);
    let stmt = session.program(p);
    assert_eq!(
        stmt.run_on("interp").unwrap().raw().returns,
        stmt.run_on("cpu-p5").unwrap().raw().returns,
        "all-sentinel fold"
    );

    // A selection that selects nothing: every morsel's compact prefix is
    // empty, and the merged position list must be all-ε like the serial
    // one.
    let mut p = Program::new();
    let v = p.load("mixed");
    let pred = p.greater_const(v, i64::MAX - 1);
    let sel = p.fold_select_global(pred);
    let picked = p.gather(v, sel);
    let cnt = p.fold_sum_global(pred);
    p.ret(sel);
    p.ret(picked);
    p.ret(cnt);
    let stmt = session.program(p);
    assert_eq!(
        stmt.run_on("interp").unwrap().raw().returns,
        stmt.run_on("cpu-p5").unwrap().raw().returns,
        "empty selection"
    );
}

#[test]
fn partitioned_outputs_carry_partition_metadata() {
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("t", &(0..50_000).collect::<Vec<_>>());
    let session = Session::new(cat);
    session.register("cpu-p4", Arc::new(cpu_p(4)));
    // An elementwise map keeps Full layout, so the returned vector
    // carries the morsel fence posts it was produced across.
    let mut p = Program::new();
    let t = p.load("t");
    let doubled = p.add(t, t);
    p.ret(doubled);
    let out = session.program(p).run_on("cpu-p4").unwrap();
    let v = &out.raw().returns[0];
    let bounds = v
        .partition_bounds()
        .expect("partition-parallel output records its morsels");
    assert_eq!(bounds.first(), Some(&0));
    assert_eq!(bounds.last(), Some(&50_000));
    assert_eq!(v.partition_count(), bounds.len() - 1);
    assert!(v.partition_count() > 1);
    assert_eq!(
        v.value_at(49_999, &KeyPath::val()).map(|x| x.as_i64()),
        Some(99_998)
    );
}

/// A deliberately skewed pool workload: one heavy morsel task pins its
/// home worker while many light ones wait behind it on the same deque —
/// the batch only finishes promptly because idle workers steal. Pins
/// result order (the executor's bit-identity merge contract) and that
/// at ≥ 4 workers the scheduler actually rebalanced (`steals > 0`).
#[test]
fn skewed_pool_batches_rebalance_by_stealing() {
    let pool = MorselPool::new(4);
    let out = pool.run(
        (0..16usize)
            .map(|i| {
                move || {
                    // Task 0 is ~20× heavier than the rest; all 16 are
                    // homed on one worker's deque, so lights MUST be
                    // stolen while the heavy one runs (a sleeping home
                    // worker yields its core, so this holds even on a
                    // single hardware thread).
                    let ms = if i == 0 { 40 } else { 2 };
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                    i * i
                }
            })
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        out,
        (0..16).map(|i| i * i).collect::<Vec<_>>(),
        "results merge in morsel order regardless of who ran what"
    );
    let stats = pool.stats();
    assert!(
        stats.steals > 0,
        "skew must rebalance by stealing: {stats:?}"
    );
    assert_eq!(stats.tasks, 16);
    pool.shutdown();
}

/// The same skew assertion end to end through a statement: a
/// partition-eager backend on an engine that owns a private 4-worker
/// pool. Bit-identity to the interpreter oracle is unconditional; the
/// steal observation is retried (scheduling is real concurrency) but
/// must happen within a few rounds on any machine — every round's
/// morsels land on one home deque while three workers sit idle.
#[test]
fn skewed_statements_steal_and_stay_bit_identical() {
    let mut cat = Catalog::in_memory();
    let vals: Vec<i64> = (0..400_000).map(|i| (i * 31 + 7) % 2000 - 1000).collect();
    cat.put_i64_column("t", &vals);
    let session = Session::new(cat);
    let pool = MorselPool::new(4);
    session.engine().set_morsel_pool(pool.clone());
    session.register("cpu-p8", Arc::new(cpu_p(8)));

    let program = voodoo::algos::aggregate::grouped_sum_count("t", "val", "val", 4000);
    let oracle = session
        .program(program.clone())
        .run_on("interp")
        .expect("oracle");
    let mut stole = false;
    for round in 0..20 {
        let parallel = session
            .program(program.clone())
            .run_on("cpu-p8")
            .expect("pooled");
        assert_eq!(
            oracle.raw().returns,
            parallel.raw().returns,
            "bit-identical on the stealing pool (round {round})"
        );
        let m = session.metrics();
        assert!(m.pool_tasks > 0, "statements must route through the pool");
        if m.steals > 0 {
            stole = true;
            break;
        }
    }
    assert!(
        stole,
        "P=8 morsels over a 4-worker pool must observe ≥ 1 steal: {:?} / {:?}",
        session.metrics(),
        pool.stats()
    );
    pool.shutdown();
}

/// Pool lifecycle through the engine: shutdown degrades to inline (still
/// bit-identical), and installing a fresh pool "restarts" pooled
/// execution.
#[test]
fn engine_pool_shutdown_and_restart_keep_serving() {
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("t", &(0..50_000).collect::<Vec<_>>());
    let session = Session::new(cat);
    session.register("cpu-p4", Arc::new(cpu_p(4)));
    let mut p = Program::new();
    let t = p.load("t");
    let pred = p.greater_const(t, 100);
    let sel = p.fold_select_global(pred);
    let sum = p.fold_sum_global(t);
    p.ret(sel);
    p.ret(sum);
    let oracle = session.program(p.clone()).run_on("interp").unwrap();

    let pool = MorselPool::new(2);
    session.engine().set_morsel_pool(pool.clone());
    let pooled = session.program(p.clone()).run_on("cpu-p4").unwrap();
    assert_eq!(oracle.raw().returns, pooled.raw().returns);
    let tasks_before = pool.stats().tasks;
    assert!(tasks_before > 0, "pooled execution queued tasks");

    // Shut the pool down mid-service: statements fall back to inline
    // execution on the submitting thread — correct, just serial.
    pool.shutdown();
    assert!(pool.is_shut_down());
    let inline = session.program(p.clone()).run_on("cpu-p4").unwrap();
    assert_eq!(oracle.raw().returns, inline.raw().returns);
    assert_eq!(
        pool.stats().tasks,
        tasks_before,
        "a shut-down pool queues nothing new"
    );

    // Restart = hand the engine a fresh pool.
    let fresh = MorselPool::new(2);
    session.engine().set_morsel_pool(fresh.clone());
    let restarted = session.program(p).run_on("cpu-p4").unwrap();
    assert_eq!(oracle.raw().returns, restarted.raw().returns);
    assert!(fresh.stats().tasks > 0, "fresh pool serves the morsels");
    fresh.shutdown();
}

#[test]
fn batched_statements_share_partitioned_results_with_serial() {
    // End-to-end through the admission queue: a mixed batch on the
    // default (Auto-parallel) cpu backend agrees with the interpreter.
    let session = Session::tpch(0.01);
    let specs: Vec<StatementSpec> = CPU_QUERIES
        .iter()
        .take(4)
        .map(|q| StatementSpec::tpch(*q))
        .collect();
    let batch = session.run_batch(&specs);
    for (spec_result, q) in batch.iter().zip(CPU_QUERIES.iter()) {
        let rows = spec_result.as_ref().expect("batch slot").rows();
        let oracle = session.query(*q).run_on("interp").unwrap();
        assert_eq!(oracle.rows(), rows, "{}", q.name());
    }
}
