//! Error type shared across the Voodoo crates.

use std::fmt;

use crate::keypath::KeyPath;
use crate::scalar::ScalarType;

/// Result alias used throughout the Voodoo crates.
pub type Result<T> = std::result::Result<T, VoodooError>;

/// Errors raised while building, validating or executing Voodoo programs.
#[derive(Debug, Clone, PartialEq)]
pub enum VoodooError {
    /// A `Load` referenced a table that the catalog does not contain.
    UnknownTable(String),
    /// A keypath did not resolve to a field of the addressed vector.
    UnknownKeyPath {
        /// The keypath that failed to resolve.
        keypath: KeyPath,
        /// Where it was used (`"%idx Op operand"`).
        context: String,
    },
    /// A statement referenced a result id that does not precede it (SSA violation).
    InvalidReference {
        /// Index of the offending statement.
        stmt: usize,
        /// The statement index it referenced.
        referenced: usize,
    },
    /// Two operands had types that the operator cannot combine.
    TypeMismatch {
        /// Where the mismatch occurred.
        context: String,
        /// Left operand type.
        lhs: ScalarType,
        /// Right operand type.
        rhs: ScalarType,
    },
    /// An operand had a type the operator does not accept.
    UnsupportedType {
        /// Where the operand was used.
        context: String,
        /// The rejected type.
        ty: ScalarType,
    },
    /// Vector sizes were incompatible (and not broadcastable).
    SizeMismatch {
        /// Where the sizes clashed.
        context: String,
        /// Left operand length.
        lhs: usize,
        /// Right operand length.
        rhs: usize,
    },
    /// A program was empty or had no return value.
    EmptyProgram,
    /// Control-vector bits conflicted with data bits (paper §3.1.1).
    ControlBitConflict {
        /// Where the conflict occurred.
        context: String,
    },
    /// Backend-specific failure (I/O, device, ...).
    Backend(String),
    /// Static analysis rejected the program; the diagnostics carry the
    /// per-statement findings (see [`crate::diag`]).
    Rejected(Vec<crate::diag::Diagnostic>),
}

impl fmt::Display for VoodooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoodooError::UnknownTable(name) => write!(f, "unknown table {name:?}"),
            VoodooError::UnknownKeyPath { keypath, context } => {
                write!(f, "unknown keypath {keypath} in {context}")
            }
            VoodooError::InvalidReference { stmt, referenced } => {
                write!(
                    f,
                    "statement {stmt} references later/missing result %{referenced}"
                )
            }
            VoodooError::TypeMismatch { context, lhs, rhs } => {
                write!(f, "type mismatch in {context}: {lhs:?} vs {rhs:?}")
            }
            VoodooError::UnsupportedType { context, ty } => {
                write!(f, "unsupported type {ty:?} in {context}")
            }
            VoodooError::SizeMismatch { context, lhs, rhs } => {
                write!(f, "size mismatch in {context}: {lhs} vs {rhs}")
            }
            VoodooError::EmptyProgram => write!(f, "program has no statements or no return"),
            VoodooError::ControlBitConflict { context } => {
                write!(
                    f,
                    "control vector bits conflict with data bits in {context}"
                )
            }
            VoodooError::Backend(msg) => write!(f, "backend error: {msg}"),
            VoodooError::Rejected(diags) => {
                write!(
                    f,
                    "program rejected by static analysis ({} finding{})",
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" }
                )?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for VoodooError {}
