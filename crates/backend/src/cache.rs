//! Keyed prepared-plan caching: compile once, run many.
//!
//! The paper compiles per query ("since we generate code, we have
//! information about factors such as datasizes at compile time", footnote
//! 1); a serving system re-runs the same queries against the same loaded
//! data, so recompiling per execution is pure waste. [`PlanCache`] maps
//! `(backend, touched-table state, program, backend knobs)` to the
//! prepared plan. Invalidation is **per table**: the key fingerprints the
//! versions ([`voodoo_storage::Catalog::table_version`]) of exactly the
//! tables the program loads or persists, so mutating table A never evicts
//! plans that only read table B. The program key is the full exhaustive
//! rendering and the knob key ([`crate::Backend::cache_params`]) carries
//! physical tuning flags (parallelism, predication), so two structurally
//! identical plans share one entry and collisions are impossible.
//!
//! Two cache shapes ship here:
//!
//! * [`PlanCache`] — a single-owner, capacity-bounded LRU map. This is
//!   one shard's worth of state; it needs `&mut self`.
//! * [`ShardedPlanCache`] — N lock-striped [`PlanCache`] shards behind one
//!   `&self` API. Statements hash to a shard by key, so concurrent
//!   sessions contend only when they prepare statements that land on the
//!   same stripe — and never while *executing* (execution happens outside
//!   every cache lock).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use voodoo_core::{Program, Result};
use voodoo_storage::Catalog;

use crate::{Backend, PreparedPlan};

/// Default total plan capacity ([`PlanCache::new`] and
/// [`ShardedPlanCache::new`]).
pub const DEFAULT_PLAN_CAPACITY: usize = 256;

/// Default shard count for [`ShardedPlanCache::new`].
pub const DEFAULT_SHARDS: usize = 8;

/// Cache key: backend identity, touched-table state, program text,
/// backend knobs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Backend name the plan was prepared by.
    pub backend: String,
    /// Fingerprint of the per-table versions of exactly the tables the
    /// program touches ([`Catalog::table_state`] over
    /// [`Program::table_deps`]) at preparation time. A plan can only
    /// depend on the shapes of the tables it loads/persists, so keying on
    /// their versions — and nothing else — keeps unrelated mutations from
    /// invalidating it.
    pub table_state: String,
    /// The program's exhaustive [`Program::cache_key`] rendering. NOT
    /// the pretty SSA `Display` text: that omits operator parameters
    /// (e.g. `Project` key paths), so two semantically different
    /// programs can share it — the cache-key form carries every
    /// operator field (and skips pretty-printing labels, which carry no
    /// semantics).
    pub program: String,
    /// The backend's physical tuning knobs
    /// ([`crate::Backend::cache_params`]): the partitioning/parallelism
    /// setting, predication, etc. Plans bake these in at prepare time, so
    /// they are part of the identity.
    pub params: String,
}

impl PlanKey {
    /// Build the key for a program on a backend against a catalog state.
    pub fn new(backend: &dyn Backend, catalog: &Catalog, program: &Program) -> PlanKey {
        PlanKey::named(backend.name(), backend, catalog, program)
    }

    /// Build the key under an explicit backend identity instead of the
    /// backend's self-reported [`Backend::name`].
    ///
    /// Registries that let callers register *differently configured*
    /// backends of the same type under distinct names (or replace a
    /// backend under one name) must key plans by their own identity —
    /// e.g. `"registry-name#registration-epoch"` — or two backends
    /// reporting the same `name()` would silently share plans.
    pub fn named(
        identity: &str,
        backend: &dyn Backend,
        catalog: &Catalog,
        program: &Program,
    ) -> PlanKey {
        // Freshness is keyed on the analyzer's *exact* effect set (live
        // Load/Persist tables), not the syntactic `Program::table_deps`
        // over-approximation: a plan can only go stale through tables an
        // execution actually touches.
        let effects = voodoo_verify::effects(program);
        PlanKey {
            backend: identity.to_string(),
            table_state: catalog.table_state(effects.tables()),
            program: program.cache_key(),
            params: backend.cache_params(),
        }
    }
}

/// Hit/miss/eviction counters (cumulative since construction or
/// [`PlanCache::clear`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to prepare.
    pub misses: u64,
    /// Entries dropped — stale catalog versions plus LRU capacity
    /// evictions.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Maximum entries the cache will hold (summed over shards).
    pub capacity: usize,
}

struct Entry {
    plan: Arc<dyn PreparedPlan>,
    /// Logical last-use time for LRU eviction.
    tick: u64,
}

/// A keyed, capacity-bounded LRU cache of prepared plans (one shard).
pub struct PlanCache {
    map: HashMap<PlanKey, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CAPACITY)
    }
}

impl PlanCache {
    /// An empty cache holding up to [`DEFAULT_PLAN_CAPACITY`] plans.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// An empty cache bounded to `capacity` plans (minimum 1).
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Re-bound the cache, evicting least-recently-used plans if it
    /// currently holds more than the new capacity.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.evict_to_capacity();
    }

    /// Fetch the prepared plan for `program` on `backend`, preparing (and
    /// caching) it on first use.
    ///
    /// Inserting a plan evicts entries for the same `(backend, program,
    /// params)` at other touched-table states: they can never hit again
    /// (table versions are monotonic per catalog), so dropping them
    /// eagerly keeps stale plans from squatting on LRU capacity.
    pub fn get_or_prepare(
        &mut self,
        backend: &dyn Backend,
        program: &Program,
        catalog: &Catalog,
    ) -> Result<Arc<dyn PreparedPlan>> {
        let key = PlanKey::new(backend, catalog, program);
        self.get_or_prepare_keyed(key, backend, program, catalog)
    }

    /// [`Self::get_or_prepare`] with a caller-built key (avoids rendering
    /// the program text twice on the sharded path, and lets registries key
    /// by their own backend identity).
    pub fn get_or_prepare_keyed(
        &mut self,
        key: PlanKey,
        backend: &dyn Backend,
        program: &Program,
        catalog: &Catalog,
    ) -> Result<Arc<dyn PreparedPlan>> {
        self.get_or_prepare_keyed_traced(key, backend, program, catalog)
            .map(|(plan, _)| plan)
    }

    /// [`Self::get_or_prepare_keyed`], additionally reporting whether the
    /// lookup hit (`true`) or had to prepare (`false`) — for callers that
    /// attribute cache traffic to a session or tenant.
    pub fn get_or_prepare_keyed_traced(
        &mut self,
        key: PlanKey,
        backend: &dyn Backend,
        program: &Program,
        catalog: &Catalog,
    ) -> Result<(Arc<dyn PreparedPlan>, bool)> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.tick = tick;
            self.hits += 1;
            return Ok((Arc::clone(&entry.plan), true));
        }
        let plan = backend.prepare(program, catalog)?;
        self.misses += 1;
        let before = self.map.len();
        self.map.retain(|k, _| {
            k.table_state == key.table_state
                || k.backend != key.backend
                || k.program != key.program
                || k.params != key.params
        });
        self.evictions += (before - self.map.len()) as u64;
        self.map.insert(
            key,
            Entry {
                plan: Arc::clone(&plan),
                tick,
            },
        );
        self.evict_to_capacity();
        Ok((plan, false))
    }

    fn evict_to_capacity(&mut self) {
        while self.map.len() > self.capacity {
            // Capacity-per-shard is small; a min-scan beats maintaining an
            // intrusive LRU list at this size.
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("non-empty map above capacity");
            self.map.remove(&lru);
            self.evictions += 1;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drop every entry while preserving the cumulative counters; the
    /// dropped entries are counted as evictions.
    pub fn evict_all(&mut self) {
        self.evictions += self.map.len() as u64;
        self.map.clear();
    }

    /// Drop every entry and reset the counters (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

/// A thread-safe prepared-plan cache: N lock-striped [`PlanCache`] shards.
///
/// Keys hash to one shard, so concurrent statement preparation contends
/// per-stripe instead of on one global lock. The shard mutex *is* held
/// while the backend compiles a missing plan — that makes preparation
/// single-flight per stripe (two sessions racing on the same cold
/// statement produce one compile, one miss), which keeps the hit/miss
/// accounting exact under concurrency. Execution of the returned plan
/// happens entirely outside the cache.
pub struct ShardedPlanCache {
    shards: Box<[Mutex<PlanCache>]>,
}

impl Default for ShardedPlanCache {
    fn default() -> Self {
        ShardedPlanCache::with_shards(DEFAULT_SHARDS, DEFAULT_PLAN_CAPACITY)
    }
}

impl ShardedPlanCache {
    /// [`DEFAULT_SHARDS`] stripes bounding [`DEFAULT_PLAN_CAPACITY`] plans
    /// in total.
    pub fn new() -> ShardedPlanCache {
        ShardedPlanCache::default()
    }

    /// A cache with an explicit stripe count and *total* capacity (split
    /// evenly across shards, rounding up).
    pub fn with_shards(shards: usize, total_capacity: usize) -> ShardedPlanCache {
        let shards = shards.max(1);
        let per_shard = total_capacity.div_ceil(shards).max(1);
        ShardedPlanCache {
            shards: (0..shards)
                .map(|_| Mutex::new(PlanCache::with_capacity(per_shard)))
                .collect(),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity summed over shards.
    pub fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock_shard(s).capacity())
            .sum()
    }

    /// Re-bound the total capacity (split evenly across shards, rounding
    /// up), evicting LRU plans from over-full shards.
    pub fn set_capacity(&self, total_capacity: usize) {
        let per_shard = total_capacity.div_ceil(self.shards.len()).max(1);
        for shard in self.shards.iter() {
            Self::lock_shard(shard).set_capacity(per_shard);
        }
    }

    /// Lock a shard, recovering from poisoning: a backend that panicked
    /// mid-`prepare` must not take 1/N of all statements down with it.
    /// The shard's own state is consistent at every panic point (the map
    /// is only touched after a successful prepare), so the poison flag
    /// carries no information here.
    fn lock_shard(shard: &Mutex<PlanCache>) -> std::sync::MutexGuard<'_, PlanCache> {
        shard.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn shard_for(&self, key: &PlanKey) -> &Mutex<PlanCache> {
        // Shard by (backend, program, params) only — NOT the table state
        // — so every version of one statement lands in the same shard and
        // the insert-time stale-state eviction can see (and drop) its
        // predecessors.
        let mut h = DefaultHasher::new();
        key.backend.hash(&mut h);
        key.program.hash(&mut h);
        key.params.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Fetch (or prepare and cache) the plan for `program` on `backend`.
    pub fn get_or_prepare(
        &self,
        backend: &dyn Backend,
        program: &Program,
        catalog: &Catalog,
    ) -> Result<Arc<dyn PreparedPlan>> {
        self.get_or_prepare_named(backend.name(), backend, program, catalog)
    }

    /// [`Self::get_or_prepare`] keyed by an explicit backend identity
    /// (see [`PlanKey::named`]) rather than `backend.name()`.
    pub fn get_or_prepare_named(
        &self,
        identity: &str,
        backend: &dyn Backend,
        program: &Program,
        catalog: &Catalog,
    ) -> Result<Arc<dyn PreparedPlan>> {
        self.get_or_prepare_named_traced(identity, backend, program, catalog)
            .map(|(plan, _)| plan)
    }

    /// [`Self::get_or_prepare_named`], additionally reporting whether the
    /// lookup hit (`true`) or prepared (`false`). Serving layers use this
    /// to attribute cache traffic per session without re-reading (racy)
    /// global counters.
    pub fn get_or_prepare_named_traced(
        &self,
        identity: &str,
        backend: &dyn Backend,
        program: &Program,
        catalog: &Catalog,
    ) -> Result<(Arc<dyn PreparedPlan>, bool)> {
        let key = PlanKey::named(identity, backend, catalog, program);
        Self::lock_shard(self.shard_for(&key))
            .get_or_prepare_keyed_traced(key, backend, program, catalog)
    }

    /// Counters summed over every shard.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            let s = Self::lock_shard(shard).stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
            total.capacity += s.capacity;
        }
        total
    }

    /// Drop every entry and reset all counters (capacity is kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            Self::lock_shard(shard).clear();
        }
    }

    /// Drop every entry while PRESERVING the cumulative counters (the
    /// dropped entries count as evictions). For callers that must
    /// invalidate plans without zeroing an operator dashboard's hit/miss
    /// history — e.g. a backend registry replacing a backend.
    pub fn evict_all(&self) {
        for shard in self.shards.iter() {
            Self::lock_shard(shard).evict_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuBackend, InterpBackend};
    use voodoo_core::KeyPath;

    fn fixture() -> (Catalog, Program) {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("t", &[1, 2, 3, 4]);
        let mut p = Program::new();
        let t = p.load("t");
        let s = p.fold_sum_global(t);
        p.ret(s);
        (cat, p)
    }

    /// A distinct single-table sum program per `i` (different constants →
    /// different SSA text → different cache keys).
    fn distinct_program(i: i64) -> Program {
        let mut p = Program::new();
        let t = p.load("t");
        let t = p.add_const(t, i);
        let s = p.fold_sum_global(t);
        p.ret(s);
        p
    }

    #[test]
    fn second_lookup_hits() {
        let (cat, p) = fixture();
        let backend = CpuBackend::single_threaded();
        let mut cache = PlanCache::new();
        let a = cache.get_or_prepare(&backend, &p, &cat).unwrap();
        let b = cache.get_or_prepare(&backend, &p, &cat).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same prepared plan instance");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 1, 0, 1));
        let out = b.execute(&cat).unwrap();
        assert_eq!(
            out.returns[0]
                .value_at(0, &KeyPath::val())
                .map(|v| v.as_i64()),
            Some(10)
        );
    }

    #[test]
    fn programs_differing_only_in_keypaths_get_distinct_entries() {
        // Regression: the pretty SSA rendering omits operator parameters
        // like Project key paths, so keying on it conflated "project
        // column a" with "project column b" and served the wrong plan.
        let mut cat = Catalog::in_memory();
        let mut t = voodoo_storage::Table::new("t");
        t.add_column(voodoo_storage::TableColumn::from_buffer(
            "a",
            voodoo_core::Buffer::I64(vec![1, 2]),
        ));
        t.add_column(voodoo_storage::TableColumn::from_buffer(
            "b",
            voodoo_core::Buffer::I64(vec![10, 20]),
        ));
        cat.insert_table(t);
        let prog_for = |col: &str| {
            let mut p = Program::new();
            let t = p.load("t");
            let v = p.project(t, KeyPath::new(col), KeyPath::val());
            let s = p.fold_sum_global(v);
            p.ret(s);
            p
        };
        let backend = InterpBackend::new();
        let mut cache = PlanCache::new();
        let sum = |cache: &mut PlanCache, col: &str| {
            cache
                .get_or_prepare(&backend, &prog_for(col), &cat)
                .unwrap()
                .execute(&cat)
                .unwrap()
                .returns[0]
                .value_at(0, &KeyPath::val())
                .map(|v| v.as_i64())
                .unwrap()
        };
        assert_eq!(sum(&mut cache, "a"), 3);
        assert_eq!(sum(&mut cache, "b"), 30, "must not serve the 'a' plan");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
    }

    #[test]
    fn pretty_printing_labels_do_not_fragment_the_cache() {
        // Labels are documented as pretty-printing only: two programs
        // differing solely in labels are the same program and must share
        // one cache entry.
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("t", &[1, 2, 3, 4]);
        let mut plain = Program::new();
        let t = plain.load("t");
        let s = plain.fold_sum_global(t);
        plain.ret(s);
        let mut labeled = plain.clone();
        labeled.label(t, "debugName");
        let backend = InterpBackend::new();
        let mut cache = PlanCache::new();
        let a = cache.get_or_prepare(&backend, &plain, &cat).unwrap();
        let b = cache.get_or_prepare(&backend, &labeled, &cat).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "labels must not change the key");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_backends_get_distinct_entries() {
        let (cat, p) = fixture();
        let cpu = CpuBackend::single_threaded();
        let interp = InterpBackend::new();
        let mut cache = PlanCache::new();
        cache.get_or_prepare(&cpu, &p, &cat).unwrap();
        cache.get_or_prepare(&interp, &p, &cat).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn catalog_mutation_invalidates() {
        let (mut cat, p) = fixture();
        let backend = CpuBackend::single_threaded();
        let mut cache = PlanCache::new();
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        // Replacing the table changes the version — the old plan is stale.
        cat.put_i64_column("t", &[10, 20, 30, 40, 50]);
        let plan = cache.get_or_prepare(&backend, &p, &cat).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 2));
        assert_eq!(s.evictions, 1, "the stale-version plan was evicted");
        assert_eq!(s.entries, 1, "stale plan dropped, not retained");
        let out = plan.execute(&cat).unwrap();
        assert_eq!(
            out.returns[0]
                .value_at(0, &KeyPath::val())
                .map(|v| v.as_i64()),
            Some(150)
        );
    }

    #[test]
    fn unrelated_table_mutations_leave_plans_hot() {
        // Invalidation is per table: the fixture program loads only "t",
        // so mutating any other table must not cost it its cached plan.
        let (mut cat, p) = fixture();
        let backend = CpuBackend::single_threaded();
        let mut cache = PlanCache::new();
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        cat.put_i64_column("other", &[1, 2, 3]);
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        let s = cache.stats();
        assert_eq!(
            (s.hits, s.misses, s.evictions),
            (1, 1, 0),
            "plan over t must stay hot across an unrelated mutation"
        );
        // Touching t itself (even without changing data) invalidates.
        cat.table_mut("t");
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        let s = cache.stats();
        assert_eq!((s.misses, s.evictions), (2, 1));
    }

    #[test]
    fn differing_knobs_get_distinct_plans_under_one_name() {
        // The partitioning knob is part of the plan identity: two
        // backends that self-report the same name but carry different
        // parallelism settings must not share a cached plan.
        let (cat, p) = fixture();
        let serial = CpuBackend::single_threaded();
        let parallel = CpuBackend::with_threads(4);
        let mut cache = PlanCache::new();
        let a = cache.get_or_prepare(&serial, &p, &cat).unwrap();
        let b = cache.get_or_prepare(&parallel, &p, &cat).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "knobs are part of the key");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
    }

    #[test]
    fn capacity_bounds_entries_with_lru_eviction() {
        let (cat, _) = fixture();
        let backend = CpuBackend::single_threaded();
        let mut cache = PlanCache::with_capacity(3);
        for i in 0..5 {
            cache
                .get_or_prepare(&backend, &distinct_program(i), &cat)
                .unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.capacity, 3);
        // Plans 0 and 1 were evicted (LRU); 2..5 still hit.
        for i in 2..5 {
            cache
                .get_or_prepare(&backend, &distinct_program(i), &cat)
                .unwrap();
        }
        assert_eq!(cache.stats().hits, 3);
        // A re-prepare of an evicted plan is a miss again.
        cache
            .get_or_prepare(&backend, &distinct_program(0), &cat)
            .unwrap();
        assert_eq!(cache.stats().misses, 6);
    }

    #[test]
    fn lru_favors_recently_used_plans() {
        let (cat, _) = fixture();
        let backend = CpuBackend::single_threaded();
        let mut cache = PlanCache::with_capacity(2);
        cache
            .get_or_prepare(&backend, &distinct_program(0), &cat)
            .unwrap();
        cache
            .get_or_prepare(&backend, &distinct_program(1), &cat)
            .unwrap();
        // Touch plan 0 so plan 1 becomes the LRU victim.
        cache
            .get_or_prepare(&backend, &distinct_program(0), &cat)
            .unwrap();
        cache
            .get_or_prepare(&backend, &distinct_program(2), &cat)
            .unwrap();
        let hits = cache.stats().hits;
        cache
            .get_or_prepare(&backend, &distinct_program(0), &cat)
            .unwrap();
        assert_eq!(cache.stats().hits, hits + 1, "recently-used plan kept");
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let (cat, _) = fixture();
        let backend = CpuBackend::single_threaded();
        let mut cache = PlanCache::with_capacity(8);
        for i in 0..4 {
            cache
                .get_or_prepare(&backend, &distinct_program(i), &cat)
                .unwrap();
        }
        cache.set_capacity(2);
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let (cat, p) = fixture();
        let backend = CpuBackend::single_threaded();
        let mut cache = PlanCache::new();
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (0, 0, 0, 0));
        assert_eq!(s.capacity, DEFAULT_PLAN_CAPACITY, "capacity survives");
    }

    #[test]
    fn sharded_cache_serves_hits_across_threads() {
        let (cat, _) = fixture();
        let backend = CpuBackend::single_threaded();
        let cache = ShardedPlanCache::new();
        let programs: Vec<Program> = (0..4).map(distinct_program).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for p in &programs {
                        cache.get_or_prepare(&backend, p, &cat).unwrap();
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(
            s.misses, 4,
            "single-flight per stripe: one compile per distinct program"
        );
        assert_eq!(s.hits, 12);
        assert_eq!(s.entries, 4);
    }

    #[test]
    fn distinct_identities_separate_same_named_backends() {
        // Two differently-configured backends both report name() == "cpu";
        // keying by a registry-owned identity keeps their plans apart.
        let (cat, p) = fixture();
        let single = CpuBackend::single_threaded();
        let multi = CpuBackend::with_threads(4);
        let cache = ShardedPlanCache::new();
        let a = cache
            .get_or_prepare_named("cpu#0", &single, &p, &cat)
            .unwrap();
        let b = cache
            .get_or_prepare_named("cpu-mt#1", &multi, &p, &cat)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "no false sharing across identities");
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (2, 2));
        // Same identity still hits.
        cache
            .get_or_prepare_named("cpu#0", &single, &p, &cat)
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn sharded_cache_evicts_stale_versions_across_mutations() {
        let (mut cat, p) = fixture();
        let backend = CpuBackend::single_threaded();
        let cache = ShardedPlanCache::new();
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        // Bump the catalog version: the re-prepared plan must land in the
        // SAME shard (sharding ignores the version) and replace the stale
        // entry rather than accumulate next to it.
        cat.put_i64_column("t", &[5, 5]);
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 1, "stale version replaced, not retained");
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn evict_all_drops_entries_but_keeps_counter_history() {
        let (cat, p) = fixture();
        let backend = CpuBackend::single_threaded();
        let cache = ShardedPlanCache::new();
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        cache.get_or_prepare(&backend, &p, &cat).unwrap();
        cache.evict_all();
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!((s.hits, s.misses), (1, 1), "history survives eviction");
        assert_eq!(s.evictions, 1, "dropped entries count as evictions");
    }

    #[test]
    fn sharded_capacity_is_split_and_settable() {
        let cache = ShardedPlanCache::with_shards(4, 16);
        assert_eq!(cache.shard_count(), 4);
        assert_eq!(cache.capacity(), 16);
        cache.set_capacity(4);
        assert_eq!(cache.capacity(), 4);
        // Capacity never drops below one plan per shard.
        cache.set_capacity(0);
        assert_eq!(cache.capacity(), 4);
    }
}
