//! The ISSUE-3 acceptance tests for the serving front door
//! (`relational::serve`): deterministic admission control — queue-full
//! sheds exactly beyond capacity, FIFO order within one session,
//! weighted fairness across sessions, deadline expiry returns `Timeout`
//! (never a hang), a worker panic fails only its own receipt — plus an
//! 8-thread saturation run pinned bit-identical to serial execution.
//!
//! Determinism comes from two purpose-built backends rather than timing:
//! a *gate* backend whose executions block until the test opens the
//! gate (so the queue's contents are exactly known when admission
//! decisions happen), and a *panic* backend that panics on negative
//! tags.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use voodoo::backend::{Backend, PlanProfile, PreparedPlan};
use voodoo::compile::EventProfile;
use voodoo::core::{KeyPath, Program, Result};
use voodoo::interp::{ExecOutput, Interpreter};
use voodoo::relational::{Engine, ServeConfig, ServeError, Session, StatementSpec, SubmitError};
use voodoo::storage::Catalog;
use voodoo::tpch::queries::{Query, QueryResult};

// ---------------------------------------------------------------------
// Test backends
// ---------------------------------------------------------------------

/// A latch: executions block in `enter` until `open`; the test can wait
/// until a known number of executions have started.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    opened: Condvar,
    entered: Mutex<u64>,
    entered_cv: Condvar,
}

impl Gate {
    fn enter(&self) {
        {
            let mut n = self.entered.lock().unwrap();
            *n += 1;
            self.entered_cv.notify_all();
        }
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }

    fn await_entered(&self, n: u64) {
        let mut e = self.entered.lock().unwrap();
        while *e < n {
            e = self.entered_cv.wait(e).unwrap();
        }
    }
}

/// A one-statement program whose single return value is `tag` — the
/// job identity the test backends recover at execution time.
fn tagged_program(tag: i64) -> Program {
    let mut p = Program::new();
    let c = p.constant(tag);
    p.ret(c);
    p
}

fn tag_of(out: &ExecOutput) -> i64 {
    out.returns[0]
        .value_at(0, &KeyPath::val())
        .map(|v| v.as_i64())
        .expect("tagged return")
}

fn interp_profile(out: ExecOutput) -> PlanProfile {
    PlanProfile {
        output: out,
        events: EventProfile::default(),
        unit_events: Vec::new(),
        simulated: None,
    }
}

/// Executions block on the gate, then append their tag to the log.
struct GateBackend {
    gate: Arc<Gate>,
    log: Arc<Mutex<Vec<i64>>>,
}

struct GatePlan {
    program: Program,
    gate: Arc<Gate>,
    log: Arc<Mutex<Vec<i64>>>,
}

impl PreparedPlan for GatePlan {
    fn backend_name(&self) -> &str {
        "gate"
    }

    fn execute(&self, catalog: &Catalog) -> Result<ExecOutput> {
        self.gate.enter();
        let out = Interpreter::new(catalog).run_program(&self.program)?;
        self.log.lock().unwrap().push(tag_of(&out));
        Ok(out)
    }

    fn explain(&self) -> String {
        "gate test backend".to_string()
    }

    fn profile(&self, catalog: &Catalog) -> Result<PlanProfile> {
        self.execute(catalog).map(interp_profile)
    }
}

impl Backend for GateBackend {
    fn name(&self) -> &str {
        "gate"
    }

    fn prepare(&self, program: &Program, _catalog: &Catalog) -> Result<Arc<dyn PreparedPlan>> {
        Ok(Arc::new(GatePlan {
            program: program.clone(),
            gate: Arc::clone(&self.gate),
            log: Arc::clone(&self.log),
        }))
    }
}

/// Panics while executing any negative tag; even tags run normally.
struct PanicBackend;

struct PanicPlan {
    program: Program,
}

impl PreparedPlan for PanicPlan {
    fn backend_name(&self) -> &str {
        "boom"
    }

    fn execute(&self, catalog: &Catalog) -> Result<ExecOutput> {
        let out = Interpreter::new(catalog).run_program(&self.program)?;
        let tag = tag_of(&out);
        assert!(tag >= 0, "test backend panics on negative tag {tag}");
        Ok(out)
    }

    fn explain(&self) -> String {
        "panic test backend".to_string()
    }

    fn profile(&self, catalog: &Catalog) -> Result<PlanProfile> {
        self.execute(catalog).map(interp_profile)
    }
}

impl Backend for PanicBackend {
    fn name(&self) -> &str {
        "boom"
    }

    fn prepare(&self, program: &Program, _catalog: &Catalog) -> Result<Arc<dyn PreparedPlan>> {
        Ok(Arc::new(PanicPlan {
            program: program.clone(),
        }))
    }
}

/// An engine over a trivial catalog with the gate backend registered.
fn gated_engine() -> (Arc<Engine>, Arc<Gate>, Arc<Mutex<Vec<i64>>>) {
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("input", &[1, 2, 3]);
    let engine = Arc::new(Engine::new(cat));
    let gate = Arc::new(Gate::default());
    let log = Arc::new(Mutex::new(Vec::new()));
    engine.register(
        "gate",
        Arc::new(GateBackend {
            gate: Arc::clone(&gate),
            log: Arc::clone(&log),
        }),
    );
    (engine, gate, log)
}

fn gated_spec(tag: i64) -> StatementSpec {
    StatementSpec::program(tagged_program(tag)).on("gate")
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

#[test]
fn queue_full_sheds_exactly_beyond_capacity() {
    let (engine, gate, _log) = gated_engine();
    const CAPACITY: usize = 4;
    let server = engine.serve(
        ServeConfig::default()
            .with_queue_capacity(CAPACITY)
            .with_workers(1),
    );

    // Occupy the only worker, then fill the queue to exactly capacity.
    let head = server.submit(gated_spec(100)).expect("worker slot");
    gate.await_entered(1);
    let queued: Vec<_> = (0..CAPACITY as i64)
        .map(|t| server.submit(gated_spec(t)).expect("within capacity"))
        .collect();

    // The (capacity+1)-th concurrent request — and only it — is shed.
    match server.submit(gated_spec(999)) {
        Err(SubmitError::QueueFull) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    let m = engine.metrics();
    assert_eq!(m.queue_depth, CAPACITY as u64, "gauge counts admitted work");
    assert_eq!(m.sheds, 1, "exactly one request shed");
    assert_eq!(server.stats().shed, 1);
    // `submitted` counts every attempt: head + capacity admitted + 1 shed.
    assert_eq!(server.stats().submitted, (CAPACITY + 2) as u64);

    // Draining restores service: everything admitted completes.
    gate.open();
    assert_eq!(tag_of(head.wait().expect("head").raw()), 100);
    for (t, r) in queued.into_iter().enumerate() {
        assert_eq!(tag_of(r.wait().expect("queued").raw()), t as i64);
    }
    assert_eq!(engine.metrics().queue_depth, 0, "gauge returns to zero");
    assert_eq!(server.stats().served, (CAPACITY + 1) as u64);
    server.shutdown();
}

#[test]
fn fifo_order_holds_within_one_session() {
    let (engine, gate, log) = gated_engine();
    let server = engine.serve(
        ServeConfig::default()
            .with_queue_capacity(32)
            .with_workers(1),
    );
    // Block the worker so every later submission queues behind it …
    let head = server.submit(gated_spec(999)).expect("head");
    gate.await_entered(1);
    let receipts: Vec<_> = (0..8)
        .map(|t| server.submit(gated_spec(t)).expect("queue"))
        .collect();
    // … then drain: one worker + one session ⇒ strict submission order.
    gate.open();
    head.wait().expect("head");
    for r in receipts {
        r.wait().expect("queued");
    }
    assert_eq!(*log.lock().unwrap(), vec![999, 0, 1, 2, 3, 4, 5, 6, 7]);
    server.shutdown();
}

#[test]
fn equal_weights_split_the_worker_fairly_under_saturation() {
    let (engine, gate, log) = gated_engine();
    let server = engine.serve(
        ServeConfig::default()
            .with_queue_capacity(64)
            .with_workers(1),
    );
    let alice = server.session(1);
    let bob = server.session(1);

    // Park the worker on a session-0 dummy, then saturate both sessions.
    let head = server.submit(gated_spec(999)).expect("head");
    gate.await_entered(1);
    let mut receipts = Vec::new();
    for t in 0..10 {
        receipts.push(alice.submit(gated_spec(t)).expect("alice"));
        receipts.push(bob.submit(gated_spec(100 + t)).expect("bob"));
    }
    gate.open();
    head.wait().expect("head");
    for r in receipts {
        r.wait().expect("queued");
    }

    // Weighted-fair dequeueing at weight 1:1 must give each session at
    // least 40% of any saturated window; min-virtual-time scheduling in
    // fact alternates strictly.
    let order = log.lock().unwrap().clone();
    let window = &order[1..11]; // first 10 after the dummy
    let alice_served = window.iter().filter(|&&t| t < 100).count();
    let bob_served = window.len() - alice_served;
    assert!(
        alice_served >= 4 && bob_served >= 4,
        "unfair split in {window:?}: alice {alice_served}, bob {bob_served}"
    );
    assert_eq!(alice.stats().served, 10);
    assert_eq!(bob.stats().served, 10);
    server.shutdown();
}

#[test]
fn weights_bias_the_split_proportionally() {
    let (engine, gate, log) = gated_engine();
    let server = engine.serve(
        ServeConfig::default()
            .with_queue_capacity(64)
            .with_workers(1),
    );
    let heavy = server.session(2);
    let light = server.session(1);
    let head = server.submit(gated_spec(999)).expect("head");
    gate.await_entered(1);
    let mut receipts = Vec::new();
    for t in 0..12 {
        receipts.push(heavy.submit(gated_spec(t)).expect("heavy"));
        receipts.push(light.submit(gated_spec(100 + t)).expect("light"));
    }
    gate.open();
    head.wait().expect("head");
    for r in receipts {
        r.wait().expect("queued");
    }
    let order = log.lock().unwrap().clone();
    let window = &order[1..10]; // first 9 after the dummy
    let heavy_served = window.iter().filter(|&&t| t < 100).count() as f64;
    let light_served = window.len() as f64 - heavy_served;
    assert!(
        heavy_served >= 1.5 * light_served,
        "2:1 weights must skew the window, got {heavy_served}:{light_served} in {window:?}"
    );
    server.shutdown();
}

#[test]
fn deadline_expiry_returns_timeout_not_a_hang() {
    let (engine, gate, _log) = gated_engine();
    let server = engine.serve(
        ServeConfig::default()
            .with_queue_capacity(1)
            .with_workers(1),
    );
    // Worker busy + queue full: admission cannot succeed until drain.
    let head = server.submit(gated_spec(1)).expect("worker slot");
    gate.await_entered(1);
    let queued = server.submit(gated_spec(2)).expect("fills the queue");

    // Blocking admission with a deadline: Timeout, promptly.
    let started = Instant::now();
    match server.submit_wait(
        gated_spec(3),
        Some(Instant::now() + Duration::from_millis(50)),
    ) {
        Err(SubmitError::Timeout) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "deadline must not hang"
    );
    assert!(
        engine.metrics().sheds >= 1,
        "an expired wait counts as shed"
    );

    // A receipt deadline on a statement stuck in the queue: Timeout too.
    match queued.wait_deadline(Instant::now() + Duration::from_millis(50)) {
        Err(ServeError::Timeout) => {}
        other => panic!("expected ServeError::Timeout, got {other:?}"),
    }

    // The statements themselves were never lost: drain and shut down.
    gate.open();
    head.wait().expect("head");
    server.shutdown();
    assert_eq!(engine.metrics().queue_depth, 0);
}

#[test]
fn worker_panic_fails_only_its_receipt_and_the_pool_keeps_serving() {
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("input", &[1]);
    let engine = Arc::new(Engine::new(cat));
    engine.register("boom", Arc::new(PanicBackend));
    let server = engine.serve(
        ServeConfig::default()
            .with_queue_capacity(16)
            .with_workers(2),
    );
    let spec = |tag: i64| StatementSpec::program(tagged_program(tag)).on("boom");

    let receipts: Vec<_> = [1, -1, 2, 3]
        .into_iter()
        .map(|t| server.submit(spec(t)).expect("admit"))
        .collect();
    let results: Vec<_> = receipts.into_iter().map(|r| r.wait()).collect();
    assert_eq!(tag_of(results[0].as_ref().expect("tag 1").raw()), 1);
    match &results[1] {
        Err(ServeError::WorkerPanic(msg)) => {
            assert!(
                msg.contains("negative tag"),
                "panic payload surfaced: {msg}"
            )
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert_eq!(tag_of(results[2].as_ref().expect("tag 2").raw()), 2);
    assert_eq!(tag_of(results[3].as_ref().expect("tag 3").raw()), 3);

    // The pool survived: a fresh submission still executes …
    let again = server.submit(spec(7)).expect("pool alive");
    assert_eq!(tag_of(again.wait().expect("served after panic").raw()), 7);
    assert_eq!(server.stats().served, 5);
    // … and the panic shows up in the engine's failure metrics.
    let m = engine.metrics();
    assert!(m.failures >= 1, "panic counted as a failure");
    server.shutdown();

    // run_batch rides the same queue: a panicking slot no longer takes
    // the whole batch down.
    let batch = engine.run_batch(&[spec(4), spec(-4), spec(5)]);
    assert_eq!(tag_of(batch[0].as_ref().expect("slot 0").raw()), 4);
    let err = format!("{}", batch[1].as_ref().unwrap_err());
    assert!(err.contains("panicked"), "{err}");
    assert_eq!(tag_of(batch[2].as_ref().expect("slot 2").raw()), 5);
}

// ---------------------------------------------------------------------
// Morsel-pool composition: a poisoned pool task fails only its statement
// ---------------------------------------------------------------------

/// A backend whose plan fans tasks across the *current* morsel pool
/// (exactly like the compiled executor's kernels) and panics inside one
/// pool task when the tag is negative.
struct PoolBackend;

struct PoolPlan {
    program: Program,
}

impl PreparedPlan for PoolPlan {
    fn backend_name(&self) -> &str {
        "pool"
    }

    fn execute(&self, catalog: &Catalog) -> Result<ExecOutput> {
        let out = Interpreter::new(catalog).run_program(&self.program)?;
        let tag = tag_of(&out);
        let partials = voodoo::compile::pool::current().run(
            (0..4i64)
                .map(|i| {
                    move || {
                        assert!(
                            !(tag < 0 && i == 2),
                            "pool task poisoned by negative tag {tag}"
                        );
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(partials, vec![0, 1, 2, 3], "morsel-order merge");
        Ok(out)
    }

    fn explain(&self) -> String {
        "morsel-pool test backend".to_string()
    }

    fn profile(&self, catalog: &Catalog) -> Result<PlanProfile> {
        self.execute(catalog).map(interp_profile)
    }
}

impl Backend for PoolBackend {
    fn name(&self) -> &str {
        "pool"
    }

    fn prepare(&self, program: &Program, _catalog: &Catalog) -> Result<Arc<dyn PreparedPlan>> {
        Ok(Arc::new(PoolPlan {
            program: program.clone(),
        }))
    }
}

/// A panic inside a *pool task* resumes on the serve worker driving the
/// statement: it fails that receipt alone (`WorkerPanic`), while both
/// the admission pool and the engine's morsel pool keep serving — the
/// two-level panic isolation the persistent scheduler promises.
#[test]
fn pool_task_panic_fails_its_statement_but_both_pools_survive() {
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("input", &[1]);
    let engine = Arc::new(Engine::new(cat));
    let pool = voodoo::compile::pool::MorselPool::new(2);
    engine.set_morsel_pool(pool.clone());
    engine.register("pool", Arc::new(PoolBackend));
    let server = engine.serve(
        ServeConfig::default()
            .with_queue_capacity(8)
            .with_workers(2),
    );
    let spec = |tag: i64| StatementSpec::program(tagged_program(tag)).on("pool");

    let receipts: Vec<_> = [1, -7, 2]
        .into_iter()
        .map(|t| server.submit(spec(t)).expect("admit"))
        .collect();
    let results: Vec<_> = receipts.into_iter().map(|r| r.wait()).collect();
    assert_eq!(tag_of(results[0].as_ref().expect("tag 1").raw()), 1);
    match &results[1] {
        Err(ServeError::WorkerPanic(msg)) => {
            assert!(msg.contains("poisoned"), "pool panic surfaced: {msg}")
        }
        other => panic!("expected WorkerPanic from the pool task, got {other:?}"),
    }
    assert_eq!(tag_of(results[2].as_ref().expect("tag 2").raw()), 2);

    // Both pools kept serving: new statements still fan across the
    // morsel pool, and the engine counted the poisoned statement.
    let again = server.submit(spec(9)).expect("admission pool alive");
    assert_eq!(tag_of(again.wait().expect("served").raw()), 9);
    assert!(engine.metrics().failures >= 1);
    assert!(engine.metrics().pool_tasks >= 3 * 4, "batches kept flowing");
    assert!(!pool.is_shut_down());
    server.shutdown();
    pool.shutdown();
}

// ---------------------------------------------------------------------
// Saturation: real workload, many submitters, no starvation
// ---------------------------------------------------------------------

#[test]
fn saturated_sessions_all_progress_and_match_serial_results() {
    const THREADS: usize = 8;
    let session = Session::tpch(0.005);
    let queries = [Query::Q1, Query::Q6, Query::Q12, Query::Q19];
    let sql = "SELECT l_returnflag, SUM(l_quantity), COUNT(*) FROM lineitem \
               GROUP BY l_returnflag";
    // Serial reference results.
    let mut reference: Vec<QueryResult> = queries
        .iter()
        .map(|&q| session.run_query(q).expect("serial query"))
        .collect();
    reference.push(QueryResult::new(session.run_sql(sql).expect("serial sql")));

    // A deliberately tight queue so submitters really block on admission.
    let server = session.serve(
        ServeConfig::default()
            .with_queue_capacity(4)
            .with_workers(4),
    );
    let alice = server.session(1);
    let bob = server.session(1);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let lane = if t % 2 == 0 {
                alice.clone()
            } else {
                bob.clone()
            };
            let reference = &reference;
            scope.spawn(move || {
                for round in 0..3 {
                    for (i, &q) in queries.iter().enumerate() {
                        let receipt = lane
                            .submit_wait(StatementSpec::tpch(q), None)
                            .expect("blocking admission");
                        let rows = receipt.wait().expect("statement").into_rows();
                        assert_eq!(
                            rows, reference[i],
                            "thread {t} round {round} query {i} differs from serial"
                        );
                    }
                    let receipt = lane
                        .submit_wait(StatementSpec::sql(sql), None)
                        .expect("blocking admission");
                    let rows = receipt.wait().expect("sql").into_rows();
                    assert_eq!(rows, reference[queries.len()], "thread {t} sql differs");
                }
            });
        }
    });

    // Both sessions made progress — no starvation under saturation.
    let (a, b) = (alice.stats(), bob.stats());
    let per_lane = (THREADS / 2 * 3 * (queries.len() + 1)) as u64;
    assert_eq!(a.served, per_lane, "alice served everything she submitted");
    assert_eq!(b.served, per_lane, "bob served everything he submitted");
    // Per-session cache attribution: the mix was warmed by the serial
    // reference run, so served statements mostly hit the shared cache.
    assert!(a.cache_hits > 0, "alice's executions hit the plan cache");
    assert!(b.cache_hits > 0, "bob's executions hit the plan cache");
    assert_eq!(session.metrics().queue_depth, 0, "queue drained");
    server.shutdown();
    // Blocking admission never sheds.
    assert_eq!(a.shed + b.shed, 0);
}
