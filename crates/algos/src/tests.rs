//! Differential and semantic tests for every cookbook program: each
//! program must (a) produce the documented answer and (b) agree exactly
//! between the reference interpreter and the compiled backend, single-
//! and multi-threaded, predicated and branching.

use voodoo_compile::{Compiler, ExecOptions, Executor};
use voodoo_core::{AggKind, KeyPath, Program, ScalarValue, StructuredVector};
use voodoo_interp::Interpreter;
use voodoo_storage::Catalog;

use crate::aggregate::{self, extract_padded};
use crate::compaction;
use crate::hashtable;
use crate::join::{self, FkJoinStrategy, LayoutStrategy};
use crate::selection::{self, SelectionStrategy};
use crate::FoldStrategy;

fn kp() -> KeyPath {
    KeyPath::val()
}

/// Run on both backends, assert equivalence, return the interpreter's
/// results (returns + persisted).
fn run_both(cat: &Catalog, p: &Program) -> Vec<StructuredVector> {
    let interp = Interpreter::new(cat).run_program(p).expect("interp");
    let cp = Compiler::new(cat).compile(p).expect("compile");
    for &threads in &[1usize, 4] {
        for &pred in &[false, true] {
            let exec = Executor::new(ExecOptions {
                parallelism: voodoo_compile::exec::Parallelism::Fixed(threads),
                // Cookbook fixtures are tiny; exercise the morsel path
                // anyway so every program is pinned parallel ≡ serial.
                min_parallel_domain: 1,
                predicated_select: pred,
                ..Default::default()
            });
            let (out, _) = exec.run(&cp, cat).expect("exec");
            assert_eq!(interp.returns.len(), out.returns.len(), "return count");
            for (i, (a, b)) in interp.returns.iter().zip(&out.returns).enumerate() {
                assert_vectors_eq(a, b, &format!("ret {i}, threads={threads}, pred={pred}"));
            }
            for ((na, va), (nb, vb)) in interp.persisted.iter().zip(&out.persisted) {
                assert_eq!(na, nb, "persist name");
                assert_vectors_eq(va, vb, &format!("persist {na}"));
            }
        }
    }
    interp.returns.clone()
}

fn assert_vectors_eq(a: &StructuredVector, b: &StructuredVector, what: &str) {
    assert_eq!(a.len(), b.len(), "length of {what}");
    assert_eq!(a.schema(), b.schema(), "schema of {what}");
    for (akp, acol) in a.fields() {
        let bcol = b.column(akp).expect("schema matched");
        for i in 0..a.len() {
            assert_eq!(acol.get(i), bcol.get(i), "slot {i} of {akp} in {what}");
        }
    }
}

fn scalar_i64(v: &StructuredVector) -> i64 {
    v.value_at(0, &kp()).expect("scalar result").as_i64()
}

fn single_col(values: &[i64]) -> Catalog {
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("input", values);
    cat
}

// ---------------------------------------------------------------------
// aggregate
// ---------------------------------------------------------------------

#[test]
fn hierarchical_sum_all_strategies_agree() {
    let vals: Vec<i64> = (1..=1000).collect();
    let expected: i64 = vals.iter().sum();
    let cat = single_col(&vals);
    for strat in [
        FoldStrategy::Global,
        FoldStrategy::Partitions { size: 64 },
        FoldStrategy::Partitions { size: 1024 },
        FoldStrategy::Partitions { size: 7 },
        FoldStrategy::Lanes { lanes: 2 },
        FoldStrategy::Lanes { lanes: 8 },
        FoldStrategy::Lanes { lanes: 3 },
    ] {
        let p = aggregate::hierarchical_sum("input", strat);
        let out = run_both(&cat, &p);
        assert_eq!(scalar_i64(&out[0]), expected, "{strat:?}");
    }
}

#[test]
fn for_parallelism_mirrors_the_storage_morsel_layout() {
    // The algebra-level strategy and the engine's morsel partitioning
    // must agree on extent sizing for the same (len, parts).
    let layout = voodoo_storage::Partitioning::for_len(1000, 4);
    let strat = FoldStrategy::for_parallelism(1000, 4);
    match strat {
        FoldStrategy::Partitions { size } => {
            assert_eq!(size, layout.morsels()[0].len());
        }
        other => panic!("expected Partitions, got {other:?}"),
    }
    // Degenerate shapes collapse to Global.
    assert_eq!(FoldStrategy::for_parallelism(1000, 1), FoldStrategy::Global);
    assert_eq!(FoldStrategy::for_parallelism(0, 8), FoldStrategy::Global);
    assert_eq!(FoldStrategy::for_parallelism(1, 8), FoldStrategy::Global);
    // And the strategy computes the right answer on both backends.
    let vals: Vec<i64> = (1..=1000).collect();
    let cat = single_col(&vals);
    let p = aggregate::hierarchical_sum("input", strat);
    let out = run_both(&cat, &p);
    assert_eq!(scalar_i64(&out[0]), vals.iter().sum::<i64>());
}

#[test]
fn hierarchical_sum_partition_larger_than_input() {
    let cat = single_col(&[1, 2, 3]);
    let p = aggregate::hierarchical_sum("input", FoldStrategy::Partitions { size: 1 << 20 });
    let out = run_both(&cat, &p);
    assert_eq!(scalar_i64(&out[0]), 6);
}

#[test]
fn hierarchical_sum_more_lanes_than_elements() {
    let cat = single_col(&[5, 7]);
    let p = aggregate::hierarchical_sum("input", FoldStrategy::Lanes { lanes: 16 });
    let out = run_both(&cat, &p);
    assert_eq!(scalar_i64(&out[0]), 12);
}

fn keyed_catalog(keys: &[i64], vals: &[i64]) -> Catalog {
    use voodoo_core::Buffer;
    use voodoo_storage::{Table, TableColumn};
    let mut cat = Catalog::in_memory();
    let mut t = Table::new("t");
    t.add_column(TableColumn::from_buffer("k", Buffer::I64(keys.to_vec())));
    t.add_column(TableColumn::from_buffer("v", Buffer::I64(vals.to_vec())));
    cat.insert_table(t);
    cat
}

#[test]
fn grouped_agg_sums_per_group() {
    let keys = [2i64, 0, 1, 0, 2, 2, 1, 0];
    let vals = [10i64, 1, 100, 2, 20, 30, 200, 4];
    let cat = keyed_catalog(&keys, &vals);
    let p = aggregate::grouped_agg("t", "k", "v", 3, AggKind::Sum);
    let out = run_both(&cat, &p);
    let rows = extract_padded(&out[0], &[&out[1]]);
    assert_eq!(rows.len(), 3);
    let by_key: std::collections::BTreeMap<i64, i64> =
        rows.iter().map(|(k, v)| (*k, v[0].as_i64())).collect();
    assert_eq!(by_key[&0], 7);
    assert_eq!(by_key[&1], 300);
    assert_eq!(by_key[&2], 60);
}

#[test]
fn grouped_agg_min_max() {
    let keys = [0i64, 1, 0, 1];
    let vals = [5i64, -3, 9, 12];
    let cat = keyed_catalog(&keys, &vals);
    for (agg, want0, want1) in [(AggKind::Min, 5, -3), (AggKind::Max, 9, 12)] {
        let p = aggregate::grouped_agg("t", "k", "v", 2, agg);
        let out = run_both(&cat, &p);
        let rows = extract_padded(&out[0], &[&out[1]]);
        let by_key: std::collections::BTreeMap<i64, i64> =
            rows.iter().map(|(k, v)| (*k, v[0].as_i64())).collect();
        assert_eq!(by_key[&0], want0, "{agg:?}");
        assert_eq!(by_key[&1], want1, "{agg:?}");
    }
}

#[test]
fn grouped_agg_with_empty_groups() {
    // Group 1 of 0..4 has no members; it must simply not appear.
    let keys = [0i64, 3, 0, 2];
    let vals = [1i64, 2, 3, 4];
    let cat = keyed_catalog(&keys, &vals);
    let p = aggregate::grouped_agg("t", "k", "v", 4, AggKind::Sum);
    let out = run_both(&cat, &p);
    let rows = extract_padded(&out[0], &[&out[1]]);
    let ks: Vec<i64> = rows.iter().map(|r| r.0).collect();
    assert_eq!(ks, vec![0, 2, 3]);
}

#[test]
fn grouped_count_counts() {
    let keys = [1i64, 1, 1, 0, 2, 2];
    let vals = [0i64; 6];
    let cat = keyed_catalog(&keys, &vals);
    let p = aggregate::grouped_count("t", "k", 3);
    let out = run_both(&cat, &p);
    let rows = extract_padded(&out[0], &[&out[1]]);
    let by_key: std::collections::BTreeMap<i64, i64> =
        rows.iter().map(|(k, v)| (*k, v[0].as_i64())).collect();
    assert_eq!(by_key[&0], 1);
    assert_eq!(by_key[&1], 3);
    assert_eq!(by_key[&2], 2);
}

#[test]
fn grouped_sum_count_shares_scatter() {
    let keys = [0i64, 1, 0, 1, 1];
    let vals = [10i64, 20, 30, 40, 60];
    let cat = keyed_catalog(&keys, &vals);
    let p = aggregate::grouped_sum_count("t", "k", "v", 2);
    let out = run_both(&cat, &p);
    let rows = extract_padded(&out[0], &[&out[1], &out[2]]);
    let by_key: std::collections::BTreeMap<i64, (i64, i64)> = rows
        .iter()
        .map(|(k, v)| (*k, (v[0].as_i64(), v[1].as_i64())))
        .collect();
    assert_eq!(by_key[&0], (40, 2));
    assert_eq!(by_key[&1], (120, 3));
}

#[test]
fn prefix_sum_global_matches_reference() {
    let vals = [3i64, 1, 4, 1, 5, 9, 2, 6];
    let cat = single_col(&vals);
    let p = aggregate::prefix_sum("input", FoldStrategy::Global);
    let out = run_both(&cat, &p);
    let mut acc = 0;
    for (i, v) in vals.iter().enumerate() {
        acc += v;
        assert_eq!(out[0].value_at(i, &kp()), Some(ScalarValue::I64(acc)));
    }
}

#[test]
fn prefix_sum_partitioned_restarts_per_partition() {
    let vals = [1i64, 1, 1, 1, 1, 1];
    let cat = single_col(&vals);
    let p = aggregate::prefix_sum("input", FoldStrategy::Partitions { size: 2 });
    let out = run_both(&cat, &p);
    let got: Vec<i64> = (0..6)
        .map(|i| out[0].value_at(i, &kp()).unwrap().as_i64())
        .collect();
    assert_eq!(got, vec![1, 2, 1, 2, 1, 2]);
}

// ---------------------------------------------------------------------
// selection
// ---------------------------------------------------------------------

fn reference_select_sum(vals: &[i64], lo: i64, hi: i64) -> i64 {
    vals.iter().filter(|&&v| v >= lo && v < hi).sum()
}

#[test]
fn select_sum_strategies_agree() {
    let vals: Vec<i64> = (0..500).map(|i| (i * 37) % 101).collect();
    let cat = single_col(&vals);
    let expected = reference_select_sum(&vals, 10, 60);
    for strat in [
        SelectionStrategy::Plain,
        SelectionStrategy::PredicatedAggregation,
        SelectionStrategy::Vectorized { chunk: 64 },
        SelectionStrategy::Vectorized { chunk: 7 },
        SelectionStrategy::Vectorized { chunk: 4096 },
    ] {
        let p = selection::select_sum("input", 10, 60, strat);
        let out = run_both(&cat, &p);
        assert_eq!(scalar_i64(&out[0]), expected, "{strat:?}");
    }
}

#[test]
fn select_sum_empty_and_full_selectivity() {
    let vals: Vec<i64> = (0..100).collect();
    let cat = single_col(&vals);
    for strat in [
        SelectionStrategy::Plain,
        SelectionStrategy::PredicatedAggregation,
        SelectionStrategy::Vectorized { chunk: 16 },
    ] {
        // Nothing qualifies.
        let p = selection::select_sum("input", 1000, 2000, strat);
        let out = run_both(&cat, &p);
        // An empty sum is ε (no qualifying input), read as 0 by hosts.
        let got = out[0].value_at(0, &kp()).map(|v| v.as_i64()).unwrap_or(0);
        assert_eq!(got, 0, "empty {strat:?}");
        // Everything qualifies.
        let p = selection::select_sum("input", 0, 1000, strat);
        let out = run_both(&cat, &p);
        assert_eq!(scalar_i64(&out[0]), 4950, "full {strat:?}");
    }
}

#[test]
fn filter_values_keeps_qualifiers_in_order() {
    let vals = [5i64, 100, 3, 100, 8];
    let cat = single_col(&vals);
    let p = selection::filter_values("input", 50, SelectionStrategy::Plain);
    let out = run_both(&cat, &p);
    // Run-aligned padded output: qualifying values at the front (global
    // run), ε afterwards.
    let present: Vec<i64> = (0..out[0].len())
        .filter_map(|i| out[0].value_at(i, &kp()).map(|v| v.as_i64()))
        .collect();
    assert_eq!(present, vec![5, 3, 8]);
}

#[test]
fn count_matching_is_selectivity_times_n() {
    let vals: Vec<i64> = (0..1000).collect();
    let cat = single_col(&vals);
    let p = selection::count_matching("input", 100, 350);
    let out = run_both(&cat, &p);
    assert_eq!(scalar_i64(&out[0]), 250);
}

#[test]
fn conjunctive_selection_matches_reference() {
    use voodoo_core::Buffer;
    use voodoo_storage::{Table, TableColumn};
    let a: Vec<i64> = (0..300).map(|i| i % 50).collect();
    let b: Vec<i64> = (0..300).map(|i| (i * 7) % 90).collect();
    let v: Vec<i64> = (0..300).collect();
    let mut t = Table::new("t");
    t.add_column(TableColumn::from_buffer("a", Buffer::I64(a.clone())));
    t.add_column(TableColumn::from_buffer("b", Buffer::I64(b.clone())));
    t.add_column(TableColumn::from_buffer("v", Buffer::I64(v.clone())));
    let mut cat = Catalog::in_memory();
    cat.insert_table(t);
    let expected: i64 = (0..300)
        .filter(|&i| a[i] < 25 && b[i] < 45)
        .map(|i| v[i])
        .sum();
    for strat in [
        SelectionStrategy::Plain,
        SelectionStrategy::PredicatedAggregation,
        SelectionStrategy::Vectorized { chunk: 32 },
    ] {
        let p = selection::select_sum_conjunctive("t", ("a", 25), ("b", 45), "v", strat);
        let out = run_both(&cat, &p);
        let got = out[0].value_at(0, &kp()).map(|x| x.as_i64()).unwrap_or(0);
        assert_eq!(got, expected, "{strat:?}");
    }
}

// ---------------------------------------------------------------------
// join
// ---------------------------------------------------------------------

fn layout_catalog(n_pos: usize, n_target: usize) -> Catalog {
    use voodoo_core::Buffer;
    use voodoo_storage::{Table, TableColumn};
    let mut cat = Catalog::in_memory();
    let mut t = Table::new("target2");
    t.add_column(TableColumn::from_buffer(
        "c1",
        Buffer::I64((0..n_target as i64).collect()),
    ));
    t.add_column(TableColumn::from_buffer(
        "c2",
        Buffer::I64((0..n_target as i64).map(|x| x * 3 + 1).collect()),
    ));
    cat.insert_table(t);
    let pos: Vec<i64> = (0..n_pos as i64)
        .map(|i| (i * 17) % n_target as i64)
        .collect();
    cat.put_i64_column("positions", &pos);
    cat
}

#[test]
fn indexed_lookup_strategies_agree() {
    let cat = layout_catalog(200, 40);
    let mut sums: Vec<(i64, i64)> = Vec::new();
    for strat in LayoutStrategy::all() {
        let p = join::indexed_lookup("target2", "positions", strat);
        let out = run_both(&cat, &p);
        let s1 = out[0].value_at(0, &KeyPath::new(".s1")).unwrap().as_i64();
        let s2 = out[1].value_at(0, &KeyPath::new(".s2")).unwrap().as_i64();
        sums.push((s1, s2));
    }
    assert_eq!(sums[0], sums[1], "single vs separate");
    assert_eq!(sums[0], sums[2], "single vs transform");
    // And against a hand computation:
    let expect1: i64 = (0..200).map(|i| (i * 17) % 40).sum();
    let expect2: i64 = (0..200).map(|i| ((i * 17) % 40) * 3 + 1).sum();
    assert_eq!(sums[0], (expect1, expect2));
}

fn fk_catalog(n_fact: usize, n_target: usize) -> Catalog {
    use voodoo_core::Buffer;
    use voodoo_storage::{Table, TableColumn};
    let mut cat = Catalog::in_memory();
    let mut fact = Table::new("fact");
    fact.add_column(TableColumn::from_buffer(
        "v",
        Buffer::I64((0..n_fact as i64).map(|i| i % 100).collect()),
    ));
    fact.add_column(TableColumn::from_buffer(
        "fk",
        Buffer::I64(
            (0..n_fact as i64)
                .map(|i| (i * 13) % n_target as i64)
                .collect(),
        ),
    ));
    cat.insert_table(fact);
    cat.put_i64_column(
        "target",
        &(0..n_target as i64).map(|x| x * 2 + 5).collect::<Vec<_>>(),
    );
    cat
}

#[test]
fn selective_fk_join_strategies_agree() {
    let cat = fk_catalog(400, 64);
    let reference = |c: i64| -> i64 {
        (0..400i64)
            .filter(|i| i % 100 < c)
            .map(|i| ((i * 13) % 64) * 2 + 5)
            .sum()
    };
    for c in [0, 17, 50, 100] {
        for strat in FkJoinStrategy::all() {
            let p = join::selective_fk_join("fact", "target", c, strat);
            let out = run_both(&cat, &p);
            let got = out[0].value_at(0, &kp()).map(|x| x.as_i64()).unwrap_or(0);
            assert_eq!(got, reference(c), "c={c} {strat:?}");
        }
    }
}

#[test]
fn fk_equi_join_aligns_with_fact() {
    let cat = fk_catalog(50, 16);
    let p = join::fk_equi_join("fact", "fk", "target");
    let out = run_both(&cat, &p);
    assert_eq!(out[0].len(), 50);
    for i in 0..50i64 {
        let want = ((i * 13) % 16) * 2 + 5;
        assert_eq!(
            out[0].value_at(i as usize, &kp()),
            Some(ScalarValue::I64(want))
        );
    }
}

#[test]
fn cross_join_filter_finds_equal_pairs() {
    use voodoo_core::Buffer;
    use voodoo_storage::{Table, TableColumn};
    let mut cat = Catalog::in_memory();
    let mut l = Table::new("l");
    l.add_column(TableColumn::from_buffer("x", Buffer::I64(vec![1, 2, 3])));
    cat.insert_table(l);
    let mut r = Table::new("r");
    r.add_column(TableColumn::from_buffer("y", Buffer::I64(vec![3, 1, 3])));
    cat.insert_table(r);
    let p = join::cross_join_filter("l", "r", ("x", "y"));
    let out = run_both(&cat, &p);
    // Matching (pos1, pos2) pairs: (0,1) for 1==1, (2,0) and (2,2) for 3==3.
    let mut pairs = Vec::new();
    for i in 0..out[0].len() {
        if let Some(p1) = out[0].value_at(i, &KeyPath::new(".pos1")) {
            let p2 = out[0].value_at(i, &KeyPath::new(".pos2")).unwrap();
            pairs.push((p1.as_i64(), p2.as_i64()));
        }
    }
    pairs.sort_unstable();
    assert_eq!(pairs, vec![(0, 1), (2, 0), (2, 2)]);
}

// ---------------------------------------------------------------------
// hashtable
// ---------------------------------------------------------------------

#[test]
fn linear_probe_build_places_all_keys() {
    // 32 keys into 64 slots (load factor 0.5), many forced collisions
    // (keys congruent mod 64).
    let keys: Vec<i64> = (0..32).map(|i| i * 64 + (i % 4)).collect();
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("keys", &keys);
    let p = hashtable::build_linear_probe("keys", 64, 40, "ht");
    let out = run_both(&cat, &p);
    // Every key must be present in the table exactly once.
    let table = &out[0];
    let mut found: Vec<i64> = (0..table.len())
        .filter_map(|i| table.value_at(i, &kp()).map(|v| v.as_i64()))
        .collect();
    found.sort_unstable();
    let mut want = keys.clone();
    want.sort_unstable();
    assert_eq!(found, want);
    // And the returned positions must point at the key's slot.
    let pos = &out[1];
    for (i, &k) in keys.iter().enumerate() {
        let slot = pos.value_at(i, &kp()).unwrap().as_i64() as usize;
        assert_eq!(table.value_at(slot, &kp()), Some(ScalarValue::I64(k)));
    }
}

#[test]
fn linear_probe_probe_finds_present_misses_absent() {
    let keys: Vec<i64> = (0..24).map(|i| i * 7 + 1).collect();
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("keys", &keys);
    // Build, persisting "ht" into the catalog.
    let build = hashtable::build_linear_probe("keys", 48, 30, "ht");
    let built = Interpreter::new(&cat).run_program(&build).expect("build");
    let (name, table) = &built.persisted[0];
    assert_eq!(name, "ht");
    cat.persist_vector("ht", table);

    // Present probes + absent probes.
    let mut probes: Vec<i64> = keys.iter().copied().take(10).collect();
    probes.extend([1000, 2000, 3000]);
    cat.put_i64_column("probes", &probes);
    let p = hashtable::probe_linear("ht", "probes", 48, 30);
    let out = run_both(&cat, &p);
    let count = out[1].value_at(0, &kp()).map(|v| v.as_i64()).unwrap_or(0);
    assert_eq!(count, 10, "10 present, 3 absent");
    // Per-key flags: first ten 1, last three ε-or-0.
    for i in 0..10 {
        assert_eq!(
            out[0].value_at(i, &kp()).map(|v| v.as_i64()),
            Some(1),
            "probe {i} present"
        );
    }
    for i in 10..13 {
        let flag = out[0].value_at(i, &kp()).map(|v| v.as_i64()).unwrap_or(0);
        assert_eq!(flag, 0, "probe {i} absent");
    }
}

#[test]
fn cuckoo_bounded_places_and_probes() {
    let keys: Vec<i64> = (0..20).map(|i| i * 5 + 2).collect();
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("keys", &keys);
    let build = hashtable::build_cuckoo_bounded("keys", 32, 24, "ck");
    let out = run_both(&cat, &build);
    let table = &out[0];
    assert_eq!(table.len(), 64, "two regions of 32");
    let mut found: Vec<i64> = (0..table.len())
        .filter_map(|i| table.value_at(i, &kp()).map(|v| v.as_i64()))
        .collect();
    found.sort_unstable();
    let mut want = keys.clone();
    want.sort_unstable();
    assert_eq!(found, want, "all keys placed");

    // Each key sits at one of its two candidate locations.
    for &k in &keys {
        let h1 = (k % 32) as usize;
        let h2 = (((k * 31 + 7) % 32) + 32) as usize;
        let at1 = table.value_at(h1, &kp()).map(|v| v.as_i64()) == Some(k);
        let at2 = table.value_at(h2, &kp()).map(|v| v.as_i64()) == Some(k);
        assert!(at1 || at2, "key {k} at a candidate slot");
    }

    cat.persist_vector("ck", table);
    let mut probes = keys.clone();
    probes.extend([999, 777]);
    cat.put_i64_column("probes", &probes);
    let p = hashtable::probe_cuckoo("ck", "probes", 32);
    let out = run_both(&cat, &p);
    // Per-region counts; ε (no hits in a region) reads as 0.
    let c1 = out[0].value_at(0, &kp()).map(|v| v.as_i64()).unwrap_or(0);
    let c2 = out[1].value_at(0, &kp()).map(|v| v.as_i64()).unwrap_or(0);
    assert_eq!(c1 + c2, keys.len() as i64);
}

#[test]
fn hash_join_rowids_matches_reference() {
    let build: Vec<i64> = vec![100, 205, 3, 42, 77, 900, 13, 64];
    let probe: Vec<i64> = vec![42, 5, 900, 100, 100, 1, 64];
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("build", &build);
    cat.put_i64_column("probe", &probe);
    let p = hashtable::hash_join_rowids("build", "probe", 16, 12);
    let out = run_both(&cat, &p);
    for (i, &q) in probe.iter().enumerate() {
        let want = build.iter().position(|&b| b == q).map(|x| x as i64);
        let got = out[0]
            .value_at(i, &kp())
            .map(|v| v.as_i64())
            .filter(|&x| x >= 0);
        assert_eq!(got, want, "probe {i} key {q}");
    }
}

// ---------------------------------------------------------------------
// compaction
// ---------------------------------------------------------------------

#[test]
fn compact_moves_survivors_to_front() {
    let vals = [50i64, 3, 99, 7, 2, 88, 1];
    let cat = single_col(&vals);
    let p = compaction::compact("input", 10);
    let out = run_both(&cat, &p);
    let got: Vec<Option<i64>> = (0..out[0].len())
        .map(|i| out[0].value_at(i, &kp()).map(|v| v.as_i64()))
        .collect();
    assert_eq!(
        got,
        vec![Some(3), Some(7), Some(2), Some(1), None, None, None]
    );
}

#[test]
fn compact_none_and_all() {
    let vals = [5i64, 6, 7];
    let cat = single_col(&vals);
    let p = compaction::compact("input", 0);
    let out = run_both(&cat, &p);
    assert!(
        (0..3).all(|i| out[0].value_at(i, &kp()).is_none()),
        "none qualify"
    );
    let p = compaction::compact("input", 100);
    let out = run_both(&cat, &p);
    let got: Vec<i64> = (0..3)
        .map(|i| out[0].value_at(i, &kp()).unwrap().as_i64())
        .collect();
    assert_eq!(got, vec![5, 6, 7], "all qualify");
}

#[test]
fn radix_sort_sorts() {
    let vals = [170i64, 45, 75, 90, 2, 802, 24, 66, 170, 0];
    let cat = single_col(&vals);
    let p = compaction::radix_sort("input", 4, 3); // 12 bits ≥ 802
    let out = run_both(&cat, &p);
    let got: Vec<i64> = (0..vals.len())
        .map(|i| out[0].value_at(i, &kp()).unwrap().as_i64())
        .collect();
    let mut want = vals.to_vec();
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn radix_sort_single_pass_buckets() {
    // One 8-bit pass fully sorts byte-sized keys.
    let vals: Vec<i64> = (0..200).map(|i| (i * 89) % 256).collect();
    let cat = single_col(&vals);
    let p = compaction::radix_sort("input", 8, 1);
    let out = run_both(&cat, &p);
    let got: Vec<i64> = (0..vals.len())
        .map(|i| out[0].value_at(i, &kp()).unwrap().as_i64())
        .collect();
    let mut want = vals.clone();
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn dedup_sorted_keeps_run_starts() {
    let vals = [1i64, 1, 1, 4, 4, 9];
    let cat = single_col(&vals);
    let p = compaction::dedup_sorted("input");
    let out = run_both(&cat, &p);
    let got: Vec<Option<i64>> = (0..6)
        .map(|i| out[0].value_at(i, &kp()).map(|v| v.as_i64()))
        .collect();
    assert_eq!(got, vec![Some(1), None, None, Some(4), None, Some(9)]);
}

#[test]
fn histogram_counts_dense_domain() {
    let vals = [0i64, 2, 2, 1, 2, 0];
    let cat = single_col(&vals);
    let p = compaction::histogram("input", 3);
    let out = run_both(&cat, &p);
    let rows = extract_padded(&out[0], &[&out[1]]);
    let by_key: std::collections::BTreeMap<i64, i64> =
        rows.iter().map(|(k, v)| (*k, v[0].as_i64())).collect();
    assert_eq!(by_key[&0], 2);
    assert_eq!(by_key[&1], 1);
    assert_eq!(by_key[&2], 3);
}

// ---------------------------------------------------------------------
// property tests
// ---------------------------------------------------------------------

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn hierarchical_sum_any_partition_size(
            vals in collection::vec(-1000i64..1000, 1..200),
            size in 1usize..64,
        ) {
            let cat = single_col(&vals);
            let expected: i64 = vals.iter().sum();
            let p = aggregate::hierarchical_sum(
                "input",
                FoldStrategy::Partitions { size },
            );
            let out = run_both(&cat, &p);
            prop_assert_eq!(scalar_i64(&out[0]), expected);
        }

        #[test]
        fn hierarchical_sum_any_lane_count(
            vals in collection::vec(-1000i64..1000, 1..150),
            lanes in 1usize..17,
        ) {
            let cat = single_col(&vals);
            let expected: i64 = vals.iter().sum();
            let p = aggregate::hierarchical_sum("input", FoldStrategy::Lanes { lanes });
            let out = run_both(&cat, &p);
            prop_assert_eq!(scalar_i64(&out[0]), expected);
        }

        #[test]
        fn select_sum_strategies_equal_reference(
            vals in collection::vec(0i64..100, 1..300),
            lo in 0i64..50,
            width in 1i64..60,
            chunk in 1usize..64,
        ) {
            let cat = single_col(&vals);
            let hi = lo + width;
            let expected = reference_select_sum(&vals, lo, hi);
            for strat in [
                SelectionStrategy::Plain,
                SelectionStrategy::PredicatedAggregation,
                SelectionStrategy::Vectorized { chunk },
            ] {
                let p = selection::select_sum("input", lo, hi, strat);
                let out = run_both(&cat, &p);
                let got = out[0].value_at(0, &kp()).map(|v| v.as_i64()).unwrap_or(0);
                prop_assert_eq!(got, expected, "{:?}", strat);
            }
        }

        #[test]
        fn compact_equals_retain(
            vals in collection::vec(-500i64..500, 1..200),
            c in -500i64..500,
        ) {
            let cat = single_col(&vals);
            let p = compaction::compact("input", c);
            let out = run_both(&cat, &p);
            let got: Vec<i64> = (0..out[0].len())
                .filter_map(|i| out[0].value_at(i, &kp()).map(|v| v.as_i64()))
                .collect();
            let want: Vec<i64> = vals.iter().copied().filter(|&v| v < c).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn radix_sort_equals_std_sort(
            vals in collection::vec(0i64..4096, 1..200),
        ) {
            let cat = single_col(&vals);
            let p = compaction::radix_sort("input", 4, 3);
            let out = run_both(&cat, &p);
            let got: Vec<i64> = (0..vals.len())
                .map(|i| out[0].value_at(i, &kp()).unwrap().as_i64())
                .collect();
            let mut want = vals.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn linear_probe_places_any_unique_keys(
            raw in collection::btree_set(0i64..10_000, 1..40),
        ) {
            let keys: Vec<i64> = raw.into_iter().collect();
            let cap = (keys.len() * 2).next_power_of_two().max(4);
            let mut cat = Catalog::in_memory();
            cat.put_i64_column("keys", &keys);
            let p = hashtable::build_linear_probe("keys", cap, keys.len() + 2, "ht");
            let out = run_both(&cat, &p);
            let table = &out[0];
            let mut found: Vec<i64> = (0..table.len())
                .filter_map(|i| table.value_at(i, &kp()).map(|v| v.as_i64()))
                .collect();
            found.sort_unstable();
            let want = keys.clone();
            prop_assert_eq!(found, want);
        }
    }
}
