//! Device tour: one program, five devices, one transfer ablation — every
//! device a `Backend` behind the same two calls (`prepare` + `profile`).
//!
//! The paper's thesis is portability: a single Voodoo program should be
//! *priceable* — and tunable — across architectures without rewriting.
//! This example takes the Figure 3 hierarchical aggregation and a
//! selective aggregation, prices their event traces on five device
//! models (Xeon single-thread, Xeon multicore, Phi-class many-core,
//! integrated GPU, discrete TITAN-X-class GPU), then re-prices the
//! discrete GPU *with* PCIe shipping — the cost the paper deliberately
//! excludes (§5.1, "We do not address the PCI bottleneck").
//!
//! ```sh
//! cargo run --release --example device_tour
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use voodoo::algos::selection::{self, SelectionStrategy};
use voodoo::algos::{aggregate, FoldStrategy};
use voodoo::backend::{Backend, SimGpuBackend};
use voodoo::compile::Device;
use voodoo::gpusim::{CostModel, GpuSimulator, Interconnect};
use voodoo::storage::Catalog;

fn main() {
    let n = 1 << 20;
    let mut rng = SmallRng::seed_from_u64(7);
    let mut cat = Catalog::in_memory();
    cat.put_i64_column(
        "input",
        &(0..n)
            .map(|_| rng.gen_range(0..1000i64))
            .collect::<Vec<_>>(),
    );

    let programs = [
        (
            "hierarchical sum (Figure 3)",
            aggregate::hierarchical_sum("input", FoldStrategy::Partitions { size: 4096 }),
        ),
        (
            "selective sum, 50% (Figure 15)",
            selection::select_sum("input", 0, 500, SelectionStrategy::Plain),
        ),
    ];
    let devices = [
        Device::cpu_single_thread(),
        Device::cpu_multicore(8),
        Device::manycore_phi(),
        Device::gpu_integrated(),
        Device::gpu_titan_x(),
    ];

    for (name, program) in &programs {
        println!("== {name} over {n} rows ==");
        for device in &devices {
            // Every simulated device is just another Backend.
            let backend = SimGpuBackend::new(GpuSimulator::new(CostModel::new(device.clone())));
            let plan = backend.prepare(program, &cat).expect("prepare");
            let secs = plan
                .profile(&cat)
                .expect("simulate")
                .simulated_seconds()
                .unwrap();
            println!("  {:<16} {:>12.6}s", device.name, secs);
        }
        // The excluded cost, made explicit: same backend + an interconnect.
        let shipped = SimGpuBackend::new(
            GpuSimulator::titan_x().with_interconnect(Interconnect::pcie3_x16()),
        );
        let report = shipped
            .prepare(program, &cat)
            .expect("prepare")
            .profile(&cat)
            .expect("simulate")
            .simulated
            .unwrap();
        println!(
            "  {:<16} {:>12.6}s   (of which {:.6}s is PCIe 3.0 shipping)",
            "gpu-titanx+pcie", report.seconds, report.transfer_seconds
        );
        println!();
    }
    println!("note: the discrete GPU wins while data is resident; charge the");
    println!("shipping and a single-pass scan loses its advantage — exactly");
    println!("why the paper measures \"once the data was loaded\" (§5.1).");
}
