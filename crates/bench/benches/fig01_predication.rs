//! Criterion bench for Figure 1: branching vs branch-free selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voodoo_bench::micro;
use voodoo_compile::exec::{ExecOptions, Executor};
use voodoo_compile::Compiler;

fn bench(c: &mut Criterion) {
    let n = 1 << 16;
    let cat = micro::selection_catalog(n, 42);
    let mut g = c.benchmark_group("fig01_predication");
    g.sample_size(10);
    for sel in [1u32, 50, 100] {
        let p = micro::prog_filter_materialize(micro::cutoff(sel as f64 / 100.0));
        let cp = Compiler::new(&cat).compile(&p).unwrap();
        g.bench_with_input(BenchmarkId::new("branch", sel), &sel, |b, _| {
            let exec = Executor::single_threaded();
            b.iter(|| exec.run(&cp, &cat).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("no_branch", sel), &sel, |b, _| {
            let exec = Executor::new(ExecOptions {
                predicated_select: true,
                ..Default::default()
            });
            b.iter(|| exec.run(&cp, &cat).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
