//! Optimizer tests: the headline claim is that the cost model *re-derives
//! the paper's tradeoffs* — the optimizer must make the choices Figures 1,
//! 14, 15 and 16 show to be right, per device and per data distribution.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use voodoo_algos::join::{FkJoinStrategy, LayoutStrategy};
use voodoo_algos::selection::SelectionStrategy;
use voodoo_compile::Device;
use voodoo_storage::{Catalog, Table, TableColumn};

use crate::knobs::Decision;
use crate::search::{CostSource, Optimizer, SearchStrategy};
use crate::workload::Workload;

const N: usize = 1 << 16;

/// Uniform values in [0, 1000) so `hi = 10·pct` gives pct% selectivity.
fn selection_catalog(n: usize) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut cat = Catalog::in_memory();
    cat.put_i64_column(
        "vals",
        &(0..n).map(|_| rng.gen_range(0..1000)).collect::<Vec<_>>(),
    );
    cat
}

fn select_workload(hi: i64) -> Workload {
    Workload::SelectSum {
        table: "vals".into(),
        lo: 0,
        hi,
        chunks: vec![1 << 10, 1 << 12, 1 << 14],
    }
}

fn fk_catalog(n_fact: usize, n_target: usize) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut cat = Catalog::in_memory();
    let mut fact = Table::new("fact");
    fact.add_column(TableColumn::from_buffer(
        "v",
        voodoo_core::Buffer::I64((0..n_fact).map(|_| rng.gen_range(0..100)).collect()),
    ));
    fact.add_column(TableColumn::from_buffer(
        "fk",
        voodoo_core::Buffer::I64(
            (0..n_fact)
                .map(|_| rng.gen_range(0..n_target as i64))
                .collect(),
        ),
    ));
    cat.insert_table(fact);
    cat.put_i64_column(
        "target",
        &(0..n_target)
            .map(|_| rng.gen_range(0..1000))
            .collect::<Vec<_>>(),
    );
    cat
}

fn lookup_catalog(n_pos: usize, n_target: usize, random: bool) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(13);
    let mut cat = Catalog::in_memory();
    let mut t = Table::new("target2");
    t.add_column(TableColumn::from_buffer(
        "c1",
        voodoo_core::Buffer::I64((0..n_target as i64).collect()),
    ));
    t.add_column(TableColumn::from_buffer(
        "c2",
        voodoo_core::Buffer::I64((0..n_target as i64).map(|x| x * 3).collect()),
    ));
    cat.insert_table(t);
    let pos: Vec<i64> = if random {
        (0..n_pos)
            .map(|_| rng.gen_range(0..n_target as i64))
            .collect()
    } else {
        (0..n_pos as i64).map(|i| i % n_target as i64).collect()
    };
    cat.put_i64_column("positions", &pos);
    cat
}

fn selection_decision(choice: &crate::search::Choice) -> (SelectionStrategy, bool) {
    match choice.best.candidate.decision {
        Decision::Selection {
            strategy,
            predicated,
        } => (strategy, predicated),
        other => panic!("expected a selection decision, got {other:?}"),
    }
}

fn fk_decision(choice: &crate::search::Choice) -> FkJoinStrategy {
    match choice.best.candidate.decision {
        Decision::FkJoin { strategy } => strategy,
        other => panic!("expected an fk-join decision, got {other:?}"),
    }
}

fn lookup_decision(choice: &crate::search::Choice) -> LayoutStrategy {
    match choice.best.candidate.decision {
        Decision::Lookup { strategy } => strategy,
        other => panic!("expected a lookup decision, got {other:?}"),
    }
}

fn seconds_of(choice: &crate::search::Choice, pred: impl Fn(&Decision) -> bool) -> f64 {
    choice
        .report
        .iter()
        .filter(|pc| pred(&pc.candidate.decision))
        .map(|pc| pc.seconds)
        .fold(f64::INFINITY, f64::min)
}

// ---------------------------------------------------------------------
// Figure 1 / 15: selection strategy choice
// ---------------------------------------------------------------------

#[test]
fn cpu_mid_selectivity_prefers_branch_free() {
    // 50% selectivity on a single-threaded CPU is the branch-misprediction
    // worst case (Figure 1); a branch-free variant must win.
    let cat = selection_catalog(N);
    let opt = Optimizer::for_device(Device::cpu_single_thread());
    let choice = opt.choose(&select_workload(500), &cat).expect("choose");
    let branching = seconds_of(&choice, |d| {
        matches!(
            d,
            Decision::Selection {
                strategy: SelectionStrategy::Plain,
                predicated: false
            }
        )
    });
    assert!(
        choice.best.seconds < branching,
        "a branch-free plan must beat plain branching at 50% selectivity: {:?}",
        choice.table()
    );
    let (_, predicated) = selection_decision(&choice);
    let is_branch_free = predicated
        || matches!(
            selection_decision(&choice).0,
            SelectionStrategy::PredicatedAggregation
        );
    assert!(
        is_branch_free,
        "winner should be branch-free: {:?}",
        choice.table()
    );
}

#[test]
fn cpu_tiny_selectivity_prefers_branching() {
    // At 0.1% selectivity branches are perfectly predictable; the
    // branch-free variants only add work (Figure 15a left edge).
    let cat = selection_catalog(N);
    let opt = Optimizer::for_device(Device::cpu_single_thread());
    let choice = opt.choose(&select_workload(1), &cat).expect("choose");
    let (strategy, predicated) = selection_decision(&choice);
    assert_eq!(strategy, SelectionStrategy::Plain, "{:?}", choice.table());
    assert!(!predicated, "branching wins at ~0.1%: {:?}", choice.table());
}

#[test]
fn gpu_never_prefers_predicated_selection() {
    // "since the GPU does not speculatively execute code, the predicated
    // version only adds additional memory traffic without any benefit"
    // (§5.3). Sweep selectivities; the GPU winner is never branch-free.
    let cat = selection_catalog(N);
    let opt = Optimizer::for_device(Device::gpu_titan_x());
    for hi in [1, 10, 100, 500, 900, 1000] {
        let choice = opt.choose(&select_workload(hi), &cat).expect("choose");
        let (strategy, predicated) = selection_decision(&choice);
        assert_eq!(
            strategy,
            SelectionStrategy::Plain,
            "hi={hi}: GPU should not pick masked/vectorized variants: {:?}",
            choice.table()
        );
        assert!(!predicated, "hi={hi}: GPU gains nothing from predication");
    }
}

#[test]
fn gpu_vectorization_is_priced_as_a_loss() {
    // "the vectorized implementation hurts performance [on the GPU]: the
    // additional position buffer ... is filled sequentially" (§5.3).
    let cat = selection_catalog(N);
    let opt = Optimizer::for_device(Device::gpu_titan_x());
    let choice = opt.choose(&select_workload(500), &cat).expect("choose");
    let plain = seconds_of(&choice, |d| {
        matches!(
            d,
            Decision::Selection {
                strategy: SelectionStrategy::Plain,
                ..
            }
        )
    });
    let vectorized = seconds_of(&choice, |d| {
        matches!(
            d,
            Decision::Selection {
                strategy: SelectionStrategy::Vectorized { .. },
                ..
            }
        )
    });
    assert!(
        vectorized > plain,
        "vectorization must be priced worse than plain on GPU: {:?}",
        choice.table()
    );
}

// ---------------------------------------------------------------------
// Figure 16: selective FK join
// ---------------------------------------------------------------------

#[test]
fn cpu_fk_join_hot_line_trick_beats_full_predication() {
    // Figure 16a/b: the predicated-*lookup* variant (position × predicate
    // → all misses hit one hot cache line) "performs significantly
    // better than the branch-free [predicated-aggregation] version" at
    // every selectivity; predicated aggregation never wins.
    let cat = fk_catalog(N, (16 << 20) / 8);
    let opt = Optimizer::for_device(Device::cpu_single_thread());
    for c in [10, 30, 50, 70, 90] {
        let wl = Workload::SelectiveFkJoin {
            fact: "fact".into(),
            target: "target".into(),
            c,
        };
        let choice = opt.choose(&wl, &cat).expect("choose");
        let pl = seconds_of(&choice, |d| {
            matches!(
                d,
                Decision::FkJoin {
                    strategy: FkJoinStrategy::PredicatedLookups
                }
            )
        });
        let pagg = seconds_of(&choice, |d| {
            matches!(
                d,
                Decision::FkJoin {
                    strategy: FkJoinStrategy::PredicatedAggregation
                }
            )
        });
        assert!(
            pl < pagg,
            "c={c}: hot-line lookups must beat full predication: {:?}",
            choice.table()
        );
        assert_ne!(
            fk_decision(&choice),
            FkJoinStrategy::PredicatedAggregation,
            "c={c}: predicated aggregation never wins (Figure 16a/b)"
        );
    }
}

#[test]
fn gpu_fk_join_prefers_branching_at_mid_selectivity() {
    // "the Branching implementation shows the best performance over most
    // of the parameter space [on the GPU]" because predicated lookups pay
    // two integer ops on weak integer ALUs (Figure 16c).
    let cat = fk_catalog(N, (16 << 20) / 8);
    let wl = Workload::SelectiveFkJoin {
        fact: "fact".into(),
        target: "target".into(),
        c: 50,
    };
    let opt = Optimizer::for_device(Device::gpu_titan_x());
    let choice = opt.choose(&wl, &cat).expect("choose");
    assert_eq!(
        fk_decision(&choice),
        FkJoinStrategy::Branching,
        "{:?}",
        choice.table()
    );
}

// ---------------------------------------------------------------------
// Figure 14: layout decision
// ---------------------------------------------------------------------

// Figure 14 geometry: positions 2× the target rows so the transform's
// copy pass can amortize (the repro harness uses the same ratio).
const LOOKUP_TARGET_ROWS: usize = (16 << 20) / 16;
const LOOKUP_POSITIONS: usize = 2 * LOOKUP_TARGET_ROWS;

#[test]
fn sequential_lookups_prefer_single_loop() {
    let cat = lookup_catalog(LOOKUP_POSITIONS, LOOKUP_TARGET_ROWS, false);
    let wl = Workload::IndexedLookup {
        target: "target2".into(),
        positions: "positions".into(),
    };
    let opt = Optimizer::for_device(Device::cpu_single_thread());
    let choice = opt.choose(&wl, &cat).expect("choose");
    assert_eq!(
        lookup_decision(&choice),
        LayoutStrategy::SingleLoop,
        "{:?}",
        choice.table()
    );
}

#[test]
fn random_lookups_into_large_target_prefer_layout_transform() {
    // Random positions into a target well beyond the LLC: co-locating the
    // two columns halves the random misses (Figure 14, "Random 128MB").
    let cat = lookup_catalog(LOOKUP_POSITIONS, (64 << 20) / 16, true);
    let wl = Workload::IndexedLookup {
        target: "target2".into(),
        positions: "positions".into(),
    };
    let opt = Optimizer::for_device(Device::cpu_single_thread());
    let choice = opt.choose(&wl, &cat).expect("choose");
    assert_eq!(
        lookup_decision(&choice),
        LayoutStrategy::LayoutTransform,
        "{:?}",
        choice.table()
    );
}

#[test]
fn gpu_random_lookups_transform_beats_separate_loops() {
    // Figure 14c: on the GPU the transform beats the separate-loop
    // variant for random patterns ("the lack of large per-core caches on
    // the GPU penalize random accesses earlier than on a CPU").
    let cat = lookup_catalog(LOOKUP_POSITIONS, LOOKUP_TARGET_ROWS, true);
    let wl = Workload::IndexedLookup {
        target: "target2".into(),
        positions: "positions".into(),
    };
    let opt = Optimizer::for_device(Device::gpu_titan_x());
    let choice = opt.choose(&wl, &cat).expect("choose");
    let separate = seconds_of(&choice, |d| {
        matches!(
            d,
            Decision::Lookup {
                strategy: LayoutStrategy::SeparateLoops
            }
        )
    });
    let transform = seconds_of(&choice, |d| {
        matches!(
            d,
            Decision::Lookup {
                strategy: LayoutStrategy::LayoutTransform
            }
        )
    });
    assert!(
        transform <= separate,
        "transform must not lose to separate loops on GPU (random): {:?}",
        choice.table()
    );
}

// ---------------------------------------------------------------------
// Figures 3/4: fold strategy
// ---------------------------------------------------------------------

#[test]
fn fold_strategy_lane_scatter_costs_more_than_logical_partitions() {
    // The Figure 4 lane variant physically scatters records round-robin
    // before folding; the Figure 3 partition variant folds in place.
    // The model must price the reorder (extra traffic + a barrier) —
    // tuning is not free, which is why it must be data/hardware driven.
    let cat = selection_catalog(N);
    let wl = Workload::HierarchicalSum {
        table: "vals".into(),
        partition_sizes: vec![1 << 12],
        lane_counts: vec![8],
    };
    let opt = Optimizer::for_device(Device::cpu_multicore(8));
    let choice = opt.choose(&wl, &cat).expect("choose");
    let partitions = seconds_of(&choice, |d| {
        matches!(
            d,
            Decision::Fold {
                strategy: voodoo_algos::FoldStrategy::Partitions { .. }
            }
        )
    });
    let lanes = seconds_of(&choice, |d| {
        matches!(
            d,
            Decision::Fold {
                strategy: voodoo_algos::FoldStrategy::Lanes { .. }
            }
        )
    });
    assert!(
        partitions < lanes,
        "logical partitioning must price below a physical lane scatter: {:?}",
        choice.table()
    );
}

#[test]
fn measured_mode_multicore_prefers_partitioned_fold() {
    // Wall-clock mode (the §7 runtime re-optimization flavor): a global
    // fold executes as one sequential loop; a partitioned fold spreads
    // runs over the worker pool. On any multicore host the partitioned
    // plan must win by a real margin.
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if threads < 2 {
        return; // single-core host: nothing to assert
    }
    let cat = selection_catalog(1 << 20);
    let wl = Workload::HierarchicalSum {
        table: "vals".into(),
        partition_sizes: vec![1 << 12],
        lane_counts: vec![],
    };
    let opt = Optimizer::for_device(Device::cpu_multicore(threads.min(4)))
        .with_sample_rows(1 << 20)
        .with_cost_source(CostSource::Measured);
    let choice = opt.choose(&wl, &cat).expect("choose");
    let global = seconds_of(&choice, |d| {
        matches!(
            d,
            Decision::Fold {
                strategy: voodoo_algos::FoldStrategy::Global
            }
        )
    });
    let partitioned = seconds_of(&choice, |d| {
        matches!(
            d,
            Decision::Fold {
                strategy: voodoo_algos::FoldStrategy::Partitions { .. }
            }
        )
    });
    assert!(
        partitioned < global,
        "partitioned fold must measure faster on {threads} threads: {:?}",
        choice.table()
    );
}

// ---------------------------------------------------------------------
// Search machinery
// ---------------------------------------------------------------------

#[test]
fn sampling_preserves_non_driver_tables() {
    let cat = fk_catalog(10_000, 5_000);
    let wl = Workload::SelectiveFkJoin {
        fact: "fact".into(),
        target: "target".into(),
        c: 50,
    };
    let sampled = crate::pricing::sample_catalog(&cat, &wl, 1_000);
    assert_eq!(
        sampled.table("fact").unwrap().len,
        1_000,
        "driver truncated"
    );
    assert_eq!(
        sampled.table("target").unwrap().len,
        5_000,
        "target kept whole"
    );
    // Stats and FKs survive truncation.
    assert!(sampled
        .table("fact")
        .unwrap()
        .column("v")
        .unwrap()
        .stats
        .is_some());
}

#[test]
fn sampling_noop_when_driver_small() {
    let cat = selection_catalog(100);
    let wl = select_workload(500);
    let sampled = crate::pricing::sample_catalog(&cat, &wl, 1_000);
    assert_eq!(sampled.table("vals").unwrap().len, 100);
}

#[test]
fn exhaustive_report_covers_every_candidate() {
    let cat = selection_catalog(4_096);
    let wl = select_workload(500);
    let opt = Optimizer::for_device(Device::cpu_single_thread()).with_sample_rows(1_024);
    let choice = opt.choose(&wl, &cat).expect("choose");
    assert_eq!(choice.report.len(), wl.candidates().len());
    assert!(choice
        .report
        .iter()
        .all(|pc| pc.seconds.is_finite() && pc.seconds > 0.0));
}

#[test]
fn greedy_prices_no_more_than_exhaustive() {
    let cat = selection_catalog(4_096);
    let wl = select_workload(500);
    let ex = Optimizer::for_device(Device::cpu_single_thread()).with_sample_rows(1_024);
    let gr = ex.clone().with_strategy(SearchStrategy::Greedy);
    let exhaustive = ex.choose(&wl, &cat).expect("exhaustive");
    let greedy = gr.choose(&wl, &cat).expect("greedy");
    assert!(greedy.report.len() <= exhaustive.report.len());
    // Greedy's winner is among exhaustive's report with the same price.
    let found = exhaustive.report.iter().any(|pc| {
        pc.candidate.decision == greedy.best.candidate.decision
            && (pc.seconds - greedy.best.seconds).abs() < 1e-12
    });
    assert!(found, "greedy winner must be a real candidate");
}

#[test]
fn chosen_plan_is_executable_and_correct() {
    // The optimizer's winner must actually run and produce the right
    // answer on both backends.
    let cat = selection_catalog(8_192);
    let wl = select_workload(500);
    for device in [Device::cpu_single_thread(), Device::gpu_titan_x()] {
        let opt = Optimizer::for_device(device).with_sample_rows(2_048);
        let choice = opt.choose(&wl, &cat).expect("choose");
        let interp = voodoo_interp::Interpreter::new(&cat)
            .run_program(&choice.best.candidate.program)
            .expect("interp");
        let expected: i64 = cat
            .table("vals")
            .unwrap()
            .column("val")
            .unwrap()
            .data
            .present()
            .map(|v| v.as_i64())
            .filter(|&v| v < 500)
            .sum();
        let got = interp.returns[0]
            .value_at(0, &voodoo_core::KeyPath::val())
            .map(|v| v.as_i64())
            .unwrap_or(0);
        assert_eq!(got, expected);
    }
}
