//! Date arithmetic for TPC-H: days since 1992-01-01.
//!
//! TPC-H dates span [1992-01-01, 1998-12-31]. Storing them as day offsets
//! keeps every engine's comparisons integer-only.

/// Days in each month of a non-leap year.
const MONTH_DAYS: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days since 1992-01-01 (which is day 0) for a calendar date.
///
/// Panics on out-of-range months/days; years before 1992 yield negative
/// offsets (valid for arithmetic).
pub fn date(year: i64, month: i64, day: i64) -> i64 {
    assert!((1..=12).contains(&month), "month out of range");
    assert!((1..=31).contains(&day), "day out of range");
    let mut days = 0i64;
    if year >= 1992 {
        for y in 1992..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
    } else {
        for y in year..1992 {
            days -= if is_leap(y) { 366 } else { 365 };
        }
    }
    for (m, &len) in MONTH_DAYS.iter().enumerate().take((month - 1) as usize) {
        days += len;
        if m == 1 && is_leap(year) {
            days += 1;
        }
    }
    days + (day - 1)
}

/// Inverse of [`date`]: `(year, month, day)` for a day offset.
pub fn from_days(mut days: i64) -> (i64, i64, i64) {
    let mut year = 1992i64;
    loop {
        let ylen = if is_leap(year) { 366 } else { 365 };
        if days >= ylen {
            days -= ylen;
            year += 1;
        } else if days < 0 {
            year -= 1;
            days += if is_leap(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let mut month = 1i64;
    for (m, &len) in MONTH_DAYS.iter().enumerate() {
        let len = len + if m == 1 && is_leap(year) { 1 } else { 0 };
        if days >= len {
            days -= len;
            month += 1;
        } else {
            break;
        }
    }
    (year, month, days + 1)
}

/// Extract the year of a day offset (used by Q7/Q8/Q9's `extract(year)`).
pub fn year_of(days: i64) -> i64 {
    from_days(days).0
}

/// The first day (offset) of a year.
pub fn year_start(year: i64) -> i64 {
    date(year, 1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(date(1992, 1, 1), 0);
        assert_eq!(date(1992, 1, 2), 1);
        assert_eq!(date(1992, 2, 1), 31);
    }

    #[test]
    fn leap_years_respected() {
        // 1992 is a leap year: Feb 29 exists.
        assert_eq!(date(1992, 3, 1) - date(1992, 2, 28), 2);
        // 1993 is not.
        assert_eq!(date(1993, 3, 1) - date(1993, 2, 28), 1);
    }

    #[test]
    fn known_tpch_dates() {
        // The spec's canonical boundaries.
        assert_eq!(date(1998, 12, 1), 2526);
        assert_eq!(date(1995, 6, 17), 1263);
        assert_eq!(date(1994, 1, 1) - date(1993, 1, 1), 365);
    }

    #[test]
    fn roundtrip() {
        for &d in &[0, 1, 58, 59, 60, 365, 366, 730, 1263, 2526, 2555] {
            let (y, m, dd) = from_days(d);
            assert_eq!(date(y, m, dd), d, "roundtrip {d} ({y}-{m}-{dd})");
        }
    }

    #[test]
    fn year_extraction() {
        assert_eq!(year_of(date(1995, 7, 4)), 1995);
        assert_eq!(year_of(date(1992, 1, 1)), 1992);
        assert_eq!(year_start(1996), date(1996, 1, 1));
    }
}
