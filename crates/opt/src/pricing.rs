//! Data-sampled, model-priced candidate costing.
//!
//! The paper's Figure 1 point is that the best plan depends on *data*
//! (selectivity) as much as hardware. The pricer therefore runs every
//! candidate on a **prefix sample** of the workload's driver table in
//! event-counting mode, prices the architectural trace with the target
//! device model (the `voodoo-gpusim` methodology), and scales the time
//! back to the full cardinality. Lookup targets are *not* sampled — their
//! full size determines whether random accesses fit the device cache,
//! which is the Figure 14/16 effect the model must see.
//!
//! Prefix sampling preserves selectivities for uniformly distributed
//! predicates (all the paper's microbenchmarks); a production system
//! would stratify.

use voodoo_backend::{Backend, CpuBackend};
use voodoo_compile::exec::ExecOptions;
use voodoo_compile::Device;
use voodoo_core::Result;
use voodoo_gpusim::CostModel;
use voodoo_storage::{Catalog, Table, TableColumn};

use crate::knobs::Candidate;
use crate::workload::Workload;

/// A candidate with its predicted cost.
#[derive(Debug, Clone)]
pub struct PricedCandidate {
    /// The plan.
    pub candidate: Candidate,
    /// Predicted seconds at full cardinality on the target device.
    pub seconds: f64,
}

/// Build a catalog in which the workload's driver table is truncated to
/// at most `sample_rows` rows and every other table is kept whole.
pub fn sample_catalog(catalog: &Catalog, workload: &Workload, sample_rows: usize) -> Catalog {
    let mut out = Catalog::in_memory();
    for name in catalog.table_names() {
        let table = catalog.table(name).expect("listed table");
        if name == workload.driver_table() && table.len > sample_rows {
            out.insert_table(truncate_table(table, sample_rows));
        } else {
            out.insert_table(table.clone());
        }
    }
    out
}

fn truncate_table(table: &Table, n: usize) -> Table {
    let mut t = Table::new(&table.name);
    t.foreign_keys = table.foreign_keys.clone();
    // Merged view: the sample must cover pending append segments too.
    for col in &table.merged_columns() {
        let mut data = voodoo_core::Column::empties(col.data.ty(), 0);
        for i in 0..n.min(col.data.len()) {
            data.push(col.data.get(i));
        }
        let stats = col.stats;
        t.add_column(TableColumn {
            name: col.name.clone(),
            data,
            dict: col.dict.clone(),
            stats,
        });
    }
    t
}

/// Price one candidate: execute on the sampled catalog counting events,
/// extrapolate the event trace to full cardinality, and price it with the
/// device model.
///
/// Extrapolation is **per unit**: only kernels whose iteration domain
/// tracks the (sampled) driver table are scaled by
/// `scale = full_rows / sample_rows`; kernels over un-sampled tables — a
/// layout transform's copy pass over the whole lookup target, say — keep
/// their measured events. Within a scaled unit, the data-proportional
/// events (operations, traffic, branches, work items) scale while the
/// structural ones (kernel barriers) and the random working set (a
/// property of the un-sampled targets) stay fixed.
pub fn price_candidate(
    candidate: &Candidate,
    sampled: &Catalog,
    device: &Device,
    scale: f64,
) -> Result<f64> {
    price_candidate_at(candidate, sampled, device, scale, 0)
}

/// [`price_candidate`] with an explicit sampled driver cardinality
/// (`sampled_driver_len`), enabling the per-unit scaling decision; 0
/// means "unknown — scale everything" (safe when scale is 1).
pub fn price_candidate_at(
    candidate: &Candidate,
    sampled: &Catalog,
    device: &Device,
    scale: f64,
    sampled_driver_len: usize,
) -> Result<f64> {
    // The candidate's executor flags ride on the unified CPU backend;
    // profile() runs single-threaded in event-counting mode — the same
    // canonical trace the gpusim figures price.
    let backend = CpuBackend::new(ExecOptions {
        predicated_select: candidate.predicated_select,
        ..Default::default()
    });
    let plan = backend.prepare(&candidate.program, sampled)?;
    let unit_profiles = plan.profile(sampled)?.unit_events;
    let model = CostModel::new(device.clone());
    let scale = scale.max(1.0);
    let scaled: Vec<_> = unit_profiles
        .iter()
        .map(|p| {
            if unit_is_driver_proportional(p, sampled_driver_len) {
                extrapolate(p, scale)
            } else {
                *p
            }
        })
        .collect();
    let report = model.price(&scaled);
    Ok(report.seconds)
}

/// Whether a unit's iteration domain tracks the sampled driver table —
/// the units whose cost grows with the full cardinality. Units over other
/// tables (lookup targets, transforms of them) have domains set by those
/// tables' (un-sampled) sizes and fall outside the window.
fn unit_is_driver_proportional(
    p: &voodoo_compile::EventProfile,
    sampled_driver_len: usize,
) -> bool {
    if sampled_driver_len == 0 {
        return true;
    }
    let e = p.elements.max(1) as f64;
    let d = sampled_driver_len as f64;
    e >= d * 0.5 && e <= d * 4.0
}

/// Wall-clock pricing: run the candidate on the sampled catalog with the
/// device's real thread count and scale the measured seconds. This is the
/// "runtime re-optimization" flavor of §7 — no model error, but it prices
/// the *host* machine, so it is only meaningful for CPU devices.
pub fn measure_candidate(
    candidate: &Candidate,
    sampled: &Catalog,
    device: &Device,
    scale: f64,
) -> Result<f64> {
    let backend = CpuBackend::new(ExecOptions {
        count_events: false,
        predicated_select: candidate.predicated_select,
        parallelism: voodoo_compile::exec::Parallelism::Fixed(device.threads.max(1)),
        ..ExecOptions::default()
    });
    // Prepared once, executed repeatedly — warm up, then best of three
    // (standard microbench hygiene at sample scale).
    let plan = backend.prepare(&candidate.program, sampled)?;
    plan.execute(sampled)?;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        plan.execute(sampled)?;
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Ok(best * scale.max(1.0))
}

/// Scale a unit's data-proportional events by `scale`.
fn extrapolate(p: &voodoo_compile::EventProfile, scale: f64) -> voodoo_compile::EventProfile {
    let s = |x: u64| -> u64 { (x as f64 * scale).round() as u64 };
    voodoo_compile::EventProfile {
        branches: s(p.branches),
        branch_flips: s(p.branch_flips),
        int_ops: s(p.int_ops),
        float_ops: s(p.float_ops),
        cmp_ops: s(p.cmp_ops),
        seq_read_bytes: s(p.seq_read_bytes),
        rand_reads: s(p.rand_reads),
        rand_working_set: p.rand_working_set,
        write_bytes: s(p.write_bytes),
        rand_writes: s(p.rand_writes),
        barriers: p.barriers,
        work_items: s(p.work_items),
        elements: s(p.elements),
        max_par: s(p.max_par),
    }
}
