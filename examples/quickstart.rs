//! Quickstart: the paper's Figure 3 / Figure 4 walkthrough.
//!
//! Builds the multithreaded hierarchical aggregation of Figure 3, runs it
//! on both backends, then applies the paper's famous two-line diff
//! (Figure 4: `Divide` → `Modulo`) to re-target the same program from
//! multicore partitions to SIMD lanes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use voodoo::compile::{kernel, Compiler, Executor};
use voodoo::core::{KeyPath, Program, ScalarValue};
use voodoo::interp::Interpreter;
use voodoo::storage::Catalog;

fn hierarchical_sum(simd: bool) -> Program {
    let mut p = Program::new();
    let input = p.load("input");
    let ids = p.range_like(0, input, 1);
    // The Figure 4 diff: one operator changes, the rest of the program —
    // and the backend — stay identical.
    let part_ids = if simd {
        p.mod_const(ids, 8) // laneCount := 8  (SIMD lanes)
    } else {
        p.div_const(ids, 1024) // partitionSize := 1024  (multicore)
    };
    let psum = p.fold_sum(part_ids, input);
    let total = p.fold_sum_global(psum);
    p.ret(total);
    p
}

fn main() {
    let n = 1 << 16;
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("input", &(1..=n as i64).collect::<Vec<_>>());
    let expected = (n as i64) * (n as i64 + 1) / 2;

    for (name, simd) in [("multicore (Figure 3)", false), ("SIMD lanes (Figure 4)", true)] {
        let p = hierarchical_sum(simd);
        println!("== {name} ==");
        println!("{p}");

        // Reference interpreter (the paper's debugging backend).
        let out = Interpreter::new(&cat).run(&p).expect("interpret");
        assert_eq!(out.value_at(0, &KeyPath::val()), Some(ScalarValue::I64(expected)));

        // Compiled backend: fragments with extents and intents.
        let cp = Compiler::new(&cat).compile(&p).expect("compile");
        for f in cp.fragments() {
            println!(
                "fragment {}: extent={} intent={} ({:?})",
                f.id,
                f.extent,
                f.intent,
                f.kind()
            );
        }
        let (out, profile) = Executor::with_threads(4).run(&cp, &cat).expect("execute");
        assert_eq!(
            out.returns[0].value_at(0, &KeyPath::val()),
            Some(ScalarValue::I64(expected))
        );
        println!("total = {expected}, barriers = {}", profile.barriers);
        println!("\ngenerated kernels:\n{}", kernel::render_opencl(&cp));
    }
}
