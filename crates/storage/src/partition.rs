//! Morsel partitioning: slicing a table's aligned columns into extents.
//!
//! The paper's central claim is that parallelism is *data-layout
//! controlled*: the same algebra program runs sequential, SIMD-laned or
//! multicore purely by how vectors are partitioned into extents (§2.3).
//! This module is the storage-side half of that claim for the serving
//! engine: a [`Partitioning`] slices the row range `[0, len)` of a table
//! (every column shares the same row count, so one partitioning covers
//! all of a table's columns) into `P` contiguous, cache-line-friendly
//! **morsels**. The compiled executor fans hot kernels — selections,
//! folds, grouped aggregation, the build side of joins — across these
//! morsels on a scoped worker pool and merges the partials back into
//! results bit-identical to the serial path.
//!
//! The executor computes layouts per *domain* with
//! [`Partitioning::for_len`] (its domains include intermediates that are
//! not tables). For base tables, [`crate::Catalog::table_partitioning`]
//! additionally caches layouts keyed by `(table, table-version, P)` —
//! the table-level entry point for engine-side consumers (dashboards,
//! algebra-level program builders sizing their fold strategies) — and a
//! table mutation (which bumps the table's version counter) invalidates
//! exactly the affected layouts.
//!
//! # Granularity for work stealing
//!
//! With the persistent morsel pool (`voodoo_compile::pool`), morsels are
//! *stolen* between long-lived workers rather than statically assigned
//! one-per-thread. A static `P == workers` split cannot rebalance: if
//! one morsel is slow (skewed selectivity, cold cache, a preempted
//! core), every other worker idles behind it. [`Partitioning::
//! for_stealing`] therefore over-decomposes the domain by a small
//! *steal grain* ([`DEFAULT_STEAL_GRAIN`] morsels per worker), so an
//! idle worker always has units left to take from a loaded peer's
//! deque. The morsels stay [`MORSEL_ALIGN`]-aligned and in row order —
//! merging partials in morsel order is what keeps pooled results
//! bit-identical to the serial path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Morsel boundaries are aligned to this many rows (when the input is
/// large enough to afford it): whole cache lines per worker, no false
/// sharing on the write side, and SIMD-friendly extents.
pub const MORSEL_ALIGN: usize = 1024;

/// Default morsels *per worker* when partitioning for a stealing
/// scheduler ([`Partitioning::for_stealing`]): enough spare units that
/// an idle worker can rebalance a skewed split, few enough that the
/// morsel-order merge stays cheap.
pub const DEFAULT_STEAL_GRAIN: usize = 4;

/// One contiguous extent of rows: `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First row of the extent.
    pub start: usize,
    /// One past the last row.
    pub end: usize,
}

impl Morsel {
    /// Rows in the extent.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the extent holds no rows.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// A slicing of `[0, len)` into at most `P` aligned, non-empty morsels.
///
/// Invariants: morsels are contiguous, in order, non-overlapping, and
/// cover `[0, len)` exactly (an empty input has zero morsels). Every
/// morsel start except the first is a multiple of [`MORSEL_ALIGN`]
/// whenever `len >= P * MORSEL_ALIGN`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    len: usize,
    morsels: Vec<Morsel>,
}

impl Partitioning {
    /// Slice `[0, len)` into at most `parts` morsels.
    ///
    /// `parts` above `len` is clamped (a morsel is never empty); small
    /// inputs split unaligned so `P`-way parallelism is still exercised,
    /// large inputs get [`MORSEL_ALIGN`]-aligned boundaries.
    pub fn for_len(len: usize, parts: usize) -> Partitioning {
        let parts = parts.max(1);
        if len == 0 {
            return Partitioning {
                len,
                morsels: Vec::new(),
            };
        }
        let target = parts.min(len);
        let mut per = len.div_ceil(target);
        if per >= MORSEL_ALIGN {
            // Round the extent up to whole aligned blocks; the last
            // morsel absorbs the remainder.
            per = per.div_ceil(MORSEL_ALIGN) * MORSEL_ALIGN;
        }
        let morsels = (0..target)
            .map(|i| Morsel {
                start: i * per,
                end: ((i + 1) * per).min(len),
            })
            .filter(|m| !m.is_empty())
            .collect();
        Partitioning { len, morsels }
    }

    /// Slice `[0, len)` into at most `parts` morsels whose boundaries
    /// additionally respect the given `cuts` (sorted or not; out-of-range
    /// and duplicate cuts are ignored): any morsel spanning a cut is
    /// split there. Segmented tables partition with their segment seams
    /// as cuts, so a morsel never straddles physically discontiguous
    /// storage — at the cost of up to `cuts.len()` extra morsels beyond
    /// `parts`. All other [`Partitioning::for_len`] invariants (ordered,
    /// contiguous, exact cover, non-empty) hold unchanged.
    pub fn for_len_with_cuts(len: usize, parts: usize, cuts: &[usize]) -> Partitioning {
        let base = Partitioning::for_len(len, parts);
        let mut cuts: Vec<usize> = cuts.iter().copied().filter(|&c| c > 0 && c < len).collect();
        cuts.sort_unstable();
        cuts.dedup();
        if cuts.is_empty() {
            return base;
        }
        let mut morsels = Vec::with_capacity(base.morsels.len() + cuts.len());
        let mut cuts = cuts.into_iter().peekable();
        for m in base.morsels {
            let mut start = m.start;
            while let Some(&c) = cuts.peek() {
                if c >= m.end {
                    break;
                }
                cuts.next();
                if c > start {
                    morsels.push(Morsel { start, end: c });
                    start = c;
                }
            }
            morsels.push(Morsel { start, end: m.end });
        }
        Partitioning { len, morsels }
    }

    /// Slice `[0, len)` for a *stealing* scheduler: up to
    /// `workers × grain` morsels (grain clamped to ≥ 1; see
    /// [`DEFAULT_STEAL_GRAIN`]), so a pool of `workers` long-lived
    /// threads has spare units to rebalance skew by stealing. Alignment
    /// and ordering invariants are exactly [`Partitioning::for_len`]'s:
    /// results merged in morsel order are independent of how many
    /// morsels the domain was cut into.
    pub fn for_stealing(len: usize, workers: usize, grain: usize) -> Partitioning {
        Partitioning::for_len(len, workers.max(1).saturating_mul(grain.max(1)))
    }

    /// The partitioned row count.
    pub fn total_len(&self) -> usize {
        self.len
    }

    /// The morsels, in row order.
    pub fn morsels(&self) -> &[Morsel] {
        &self.morsels
    }

    /// Number of morsels.
    pub fn count(&self) -> usize {
        self.morsels.len()
    }

    /// Fence-post boundaries (`starts` plus the final `end`): the
    /// partition metadata recorded on vectors produced partition-parallel
    /// (`voodoo_core::StructuredVector::partition_bounds`).
    pub fn boundaries(&self) -> Vec<usize> {
        let mut b: Vec<usize> = self.morsels.iter().map(|m| m.start).collect();
        b.push(self.len);
        b
    }
}

/// A per-catalog cache of table partitionings, keyed by
/// `(table name, table version, parts)`.
///
/// Shared (behind an [`Arc`]) across catalog clones and snapshots: the
/// key carries the table's own version counter, so entries for a mutated
/// table simply stop being looked up — and are pruned on the next insert
/// — while other tables' layouts stay hot.
#[derive(Clone, Default)]
pub struct PartitionCache {
    cached: Arc<Mutex<LayoutMap>>,
}

/// `(table name, table version, parts)` → cached layout.
type LayoutMap = HashMap<(String, u64, usize), Arc<Partitioning>>;

impl std::fmt::Debug for PartitionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self
            .cached
            .lock()
            .map(|m| m.len())
            .unwrap_or_else(|e| e.into_inner().len());
        f.debug_struct("PartitionCache")
            .field("entries", &entries)
            .finish()
    }
}

impl PartitionCache {
    /// Fetch (or compute and cache) the partitioning of a table with the
    /// given row count at its current version.
    ///
    /// A hit is only served if its `total_len` matches `len`: two forked
    /// catalog clones can independently assign one table the same version
    /// number with *different* row counts (versions are monotonic per
    /// lineage, not globally unique), and a layout covering the wrong row
    /// range must never escape.
    pub fn get(
        &self,
        table: &str,
        table_version: u64,
        len: usize,
        parts: usize,
    ) -> Arc<Partitioning> {
        let key = (table.to_string(), table_version, parts.max(1));
        let mut map = self.cached.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = map.get(&key) {
            if p.total_len() == len {
                return Arc::clone(p);
            }
        }
        // Prune layouts of stale versions of this table: they can never
        // be looked up again (versions are monotonic), so dropping them
        // keeps the cache bounded by live (table, parts) combinations.
        map.retain(|(name, version, _), _| name != table || *version == table_version);
        let p = Arc::new(Partitioning::for_len(len, parts));
        map.insert(key, Arc::clone(&p));
        p
    }

    /// Like [`PartitionCache::get`], but the layout respects the given
    /// cut points ([`Partitioning::for_len_with_cuts`]) — the entry point
    /// for segmented tables, whose segment seams are the cuts. The cache
    /// key is unchanged: a table's version determines its segment layout,
    /// so one layout per `(table, version, parts)` is still exact.
    pub fn get_with_cuts(
        &self,
        table: &str,
        table_version: u64,
        len: usize,
        parts: usize,
        cuts: &[usize],
    ) -> Arc<Partitioning> {
        let key = (table.to_string(), table_version, parts.max(1));
        let mut map = self.cached.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = map.get(&key) {
            if p.total_len() == len {
                return Arc::clone(p);
            }
        }
        map.retain(|(name, version, _), _| name != table || *version == table_version);
        let p = Arc::new(Partitioning::for_len_with_cuts(len, parts, cuts));
        map.insert(key, Arc::clone(&p));
        p
    }

    /// Number of cached layouts (for tests and diagnostics).
    pub fn entries(&self) -> usize {
        self.cached.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_exactly_without_overlap() {
        for (len, parts) in [(0usize, 4usize), (1, 4), (7, 3), (10_000, 4), (4096, 8)] {
            let p = Partitioning::for_len(len, parts);
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for m in p.morsels() {
                assert_eq!(m.start, prev_end, "contiguous ({len}, {parts})");
                assert!(!m.is_empty(), "no empty morsels ({len}, {parts})");
                covered += m.len();
                prev_end = m.end;
            }
            assert_eq!(covered, len, "full coverage ({len}, {parts})");
            assert!(p.count() <= parts.max(1));
        }
    }

    #[test]
    fn large_inputs_get_aligned_boundaries() {
        let p = Partitioning::for_len(10 * MORSEL_ALIGN + 17, 4);
        for m in &p.morsels()[1..] {
            assert_eq!(m.start % MORSEL_ALIGN, 0, "aligned start {}", m.start);
        }
        assert_eq!(p.boundaries().last(), Some(&(10 * MORSEL_ALIGN + 17)));
    }

    #[test]
    fn parts_beyond_rows_clamp_to_singleton_morsels() {
        let p = Partitioning::for_len(3, 8);
        assert_eq!(p.count(), 3);
        assert!(p.morsels().iter().all(|m| m.len() == 1));
        let empty = Partitioning::for_len(0, 8);
        assert_eq!(empty.count(), 0);
        assert!(empty.boundaries() == vec![0]);
    }

    #[test]
    fn stealing_layouts_over_decompose_but_keep_invariants() {
        let p = Partitioning::for_stealing(100 * MORSEL_ALIGN, 4, DEFAULT_STEAL_GRAIN);
        assert!(p.count() > 4, "spare units for stealing: {}", p.count());
        assert!(p.count() <= 4 * DEFAULT_STEAL_GRAIN);
        let mut prev_end = 0usize;
        for m in p.morsels() {
            assert_eq!(m.start, prev_end);
            prev_end = m.end;
        }
        assert_eq!(prev_end, 100 * MORSEL_ALIGN);
        for m in &p.morsels()[1..] {
            assert_eq!(m.start % MORSEL_ALIGN, 0);
        }
        // Degenerate grains clamp instead of collapsing to zero morsels.
        assert_eq!(Partitioning::for_stealing(10, 4, 0).count(), 4);
        assert_eq!(Partitioning::for_stealing(0, 4, 4).count(), 0);
    }

    #[test]
    fn cut_layouts_respect_seams_and_keep_invariants() {
        // Cuts mid-morsel split it; cuts on existing boundaries, out of
        // range, duplicated or unsorted are absorbed.
        let len = 10 * MORSEL_ALIGN + 17;
        let cuts = [
            3 * MORSEL_ALIGN + 5,
            MORSEL_ALIGN / 2,
            3 * MORSEL_ALIGN + 5,
            0,
            len,
            len + 99,
        ];
        let p = Partitioning::for_len_with_cuts(len, 4, &cuts);
        let mut prev_end = 0usize;
        for m in p.morsels() {
            assert_eq!(m.start, prev_end, "contiguous");
            assert!(!m.is_empty());
            prev_end = m.end;
        }
        assert_eq!(prev_end, len, "full coverage");
        let bounds = p.boundaries();
        for c in [MORSEL_ALIGN / 2, 3 * MORSEL_ALIGN + 5] {
            assert!(bounds.contains(&c), "cut {c} honored in {bounds:?}");
        }
        // At most one extra morsel per interior cut.
        assert!(p.count() <= 4 + 2);
        // No cuts degenerates to the plain layout.
        assert_eq!(
            Partitioning::for_len_with_cuts(len, 4, &[]),
            Partitioning::for_len(len, 4)
        );
    }

    #[test]
    fn cache_hit_requires_matching_len() {
        // Forked clones can assign one table the same version with
        // different row counts; a layout of the wrong length must be
        // recomputed, not served.
        let cache = PartitionCache::default();
        let a = cache.get("t", 5, 10_000, 4);
        assert_eq!(a.total_len(), 10_000);
        let b = cache.get("t", 5, 6_000, 4);
        assert_eq!(b.total_len(), 6_000, "stale-len layout must not escape");
    }

    #[test]
    fn cache_shares_layouts_and_invalidates_per_version() {
        let cache = PartitionCache::default();
        let a = cache.get("t", 1, 10_000, 4);
        let b = cache.get("t", 1, 10_000, 4);
        assert!(Arc::ptr_eq(&a, &b), "same layout instance served");
        assert_eq!(cache.entries(), 1);
        // A different P is a distinct layout; a new version prunes both.
        let _ = cache.get("t", 1, 10_000, 2);
        assert_eq!(cache.entries(), 2);
        let c = cache.get("t", 2, 12_000, 4);
        assert_eq!(c.total_len(), 12_000);
        assert_eq!(cache.entries(), 1, "stale-version layouts pruned");
        // Other tables are untouched by pruning.
        let _ = cache.get("u", 7, 100, 4);
        let _ = cache.get("t", 3, 100, 4);
        assert_eq!(cache.entries(), 2);
    }
}
