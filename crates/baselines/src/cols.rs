//! Typed column access helpers shared by the baseline engines.

use voodoo_storage::Catalog;

/// Borrow an `i64` column of a table (panics on schema mismatch — the
/// generator guarantees these).
///
/// Borrows the *base* buffer, so the table must not carry pending append
/// segments (compact first); the baselines only ever read generator-built
/// static tables, where that always holds.
pub fn i64col<'a>(cat: &'a Catalog, table: &str, col: &str) -> &'a [i64] {
    let t = cat.table(table).unwrap_or_else(|| panic!("table {table}"));
    assert!(
        t.segments().is_empty(),
        "{table} has pending append segments; compact before borrowing raw columns"
    );
    t.column(col)
        .unwrap_or_else(|| panic!("column {table}.{col}"))
        .data
        .buffer()
        .as_i64()
        .unwrap_or_else(|| panic!("{table}.{col} is not i64"))
}

/// Borrow a dictionary-code column (`i32` codes). Same base-borrow
/// constraint as [`i64col`]: no pending append segments.
pub fn codecol<'a>(cat: &'a Catalog, table: &str, col: &str) -> &'a [i32] {
    let t = cat.table(table).unwrap_or_else(|| panic!("table {table}"));
    assert!(
        t.segments().is_empty(),
        "{table} has pending append segments; compact before borrowing raw columns"
    );
    t.column(col)
        .unwrap_or_else(|| panic!("column {table}.{col}"))
        .data
        .buffer()
        .as_i32()
        .unwrap_or_else(|| panic!("{table}.{col} is not a dict column"))
}

/// The dictionary code of an exact string value, or `-1` when absent
/// (an absent constant can never match — semantically an empty filter).
pub fn code_of(cat: &Catalog, table: &str, col: &str, value: &str) -> i64 {
    cat.table(table)
        .and_then(|t| t.column(col))
        .and_then(|c| c.encode(value))
        .map(|c| c as i64)
        .unwrap_or(-1)
}

/// A boolean per dictionary code, true where the decoded string satisfies
/// the predicate (the engine-side realization of `LIKE` over dictionary
/// encoding — evaluated once per distinct value, not per row).
pub fn codes_where(
    cat: &Catalog,
    table: &str,
    col: &str,
    pred: impl Fn(&str) -> bool,
) -> Vec<bool> {
    let c = cat
        .table(table)
        .and_then(|t| t.column(col))
        .unwrap_or_else(|| panic!("column {table}.{col}"));
    c.dict
        .as_ref()
        .map(|d| d.iter().map(|s| pred(s)).collect())
        .unwrap_or_default()
}

/// Canonical rank of each dictionary code: the code's string's position in
/// the *sorted* dictionary. Engines output ranks instead of raw codes so
/// results compare across any code assignment.
pub fn canon_ranks(cat: &Catalog, table: &str, col: &str) -> Vec<i64> {
    let c = cat
        .table(table)
        .and_then(|t| t.column(col))
        .unwrap_or_else(|| panic!("column {table}.{col}"));
    let dict = c.dict.as_ref().expect("dict column");
    let mut sorted: Vec<&String> = dict.iter().collect();
    sorted.sort_unstable();
    dict.iter()
        .map(|s| sorted.binary_search(&s).expect("present") as i64)
        .collect()
}

/// Row count of a table.
pub fn len_of(cat: &Catalog, table: &str) -> usize {
    cat.table(table).map(|t| t.len).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use voodoo_core::Buffer;
    use voodoo_storage::{Table, TableColumn};

    fn cat() -> Catalog {
        let mut cat = Catalog::in_memory();
        let mut t = Table::new("t");
        t.add_column(TableColumn::from_buffer("k", Buffer::I64(vec![5, 6, 7])));
        t.add_column(TableColumn::from_strings("s", &["zeta", "alpha", "zeta"]));
        cat.insert_table(t);
        cat
    }

    #[test]
    fn accessors() {
        let cat = cat();
        assert_eq!(i64col(&cat, "t", "k"), &[5, 6, 7]);
        assert_eq!(codecol(&cat, "t", "s"), &[0, 1, 0]);
        assert_eq!(code_of(&cat, "t", "s", "alpha"), 1);
        assert_eq!(code_of(&cat, "t", "s", "nope"), -1);
    }

    #[test]
    fn canonical_ranks_sort_strings() {
        let cat = cat();
        // dict order: zeta=0, alpha=1; sorted: alpha, zeta.
        assert_eq!(canon_ranks(&cat, "t", "s"), vec![1, 0]);
    }

    #[test]
    fn codes_where_matches() {
        let cat = cat();
        assert_eq!(
            codes_where(&cat, "t", "s", |s| s.starts_with('z')),
            vec![true, false]
        );
    }
}
