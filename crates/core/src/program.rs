//! SSA programs and the fluent program builder.
//!
//! A Voodoo program is a DAG of operator applications in static single
//! assignment form (paper Figure 3 is written exactly this way). Statements
//! are stored in topological (program) order; [`VRef`]s are indices into the
//! statement list.
//!
//! The [`Program`] builder offers one method per operator plus the
//! conveniences the paper uses informally (`FoldCount`, scalar-broadcast
//! arithmetic, control-vector zipping).

use std::fmt;

use crate::error::{Result, VoodooError};
use crate::keypath::KeyPath;
use crate::ops::{AggKind, BinOp, Op, SizeSpec};
use crate::scalar::ScalarValue;

/// A reference to the result of a statement (SSA value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VRef(pub u32);

impl VRef {
    /// The statement index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// One SSA statement: an operator plus an optional human-readable label.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The operator application.
    pub op: Op,
    /// Optional label used by the pretty-printer (e.g. `partitionIDs`).
    pub label: Option<String>,
}

/// A Voodoo program: SSA statements plus the returned results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    stmts: Vec<Statement>,
    returns: Vec<VRef>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Append a raw operator; returns its SSA reference.
    pub fn push(&mut self, op: Op) -> VRef {
        let r = VRef(self.stmts.len() as u32);
        self.stmts.push(Statement { op, label: None });
        r
    }

    /// Attach a label to a statement (pretty-printing only).
    pub fn label(&mut self, v: VRef, name: &str) -> VRef {
        self.stmts[v.index()].label = Some(name.to_string());
        v
    }

    /// Mark a statement's result as a program output.
    pub fn ret(&mut self, v: VRef) {
        self.returns.push(v);
    }

    /// The statements in program order.
    pub fn stmts(&self) -> &[Statement] {
        &self.stmts
    }

    /// The statement behind a reference.
    pub fn stmt(&self, v: VRef) -> &Statement {
        &self.stmts[v.index()]
    }

    /// The returned results, in `ret` order.
    pub fn returns(&self) -> &[VRef] {
        &self.returns
    }

    /// An exhaustive, collision-free rendering for keying caches: every
    /// operator field is included (unlike `Display`, which elides
    /// parameters like `Project` key paths for readability), while the
    /// pretty-printing-only statement labels are excluded (two programs
    /// differing only in labels are the same program).
    pub fn cache_key(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        for stmt in &self.stmts {
            let _ = writeln!(s, "{:?}", stmt.op);
        }
        let _ = write!(s, "returns {:?}", self.returns);
        s
    }

    /// The persistent tables this program touches (`Load` sources and
    /// `Persist` targets), sorted and deduplicated.
    ///
    /// This is the program's *data footprint*: a prepared plan can only
    /// depend on the shapes (schemas, sizes, stats) of these tables, so
    /// caches key plan freshness on their per-table versions and ignore
    /// mutations to everything else.
    pub fn table_deps(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .stmts
            .iter()
            .filter_map(|s| match &s.op {
                Op::Load { name } => Some(name.as_str()),
                Op::Persist { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Check SSA well-formedness: every input precedes its use and at least
    /// one result is returned.
    pub fn validate(&self) -> Result<()> {
        if self.stmts.is_empty() || self.returns.is_empty() {
            return Err(VoodooError::EmptyProgram);
        }
        for (i, stmt) in self.stmts.iter().enumerate() {
            for input in stmt.op.inputs() {
                if input.index() >= i {
                    return Err(VoodooError::InvalidReference {
                        stmt: i,
                        referenced: input.index(),
                    });
                }
            }
        }
        for r in &self.returns {
            if r.index() >= self.stmts.len() {
                return Err(VoodooError::InvalidReference {
                    stmt: self.stmts.len(),
                    referenced: r.index(),
                });
            }
        }
        Ok(())
    }

    /// Statements that consume `v`, in program order.
    pub fn consumers(&self, v: VRef) -> Vec<VRef> {
        self.stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.op.inputs().contains(&v))
            .map(|(i, _)| VRef(i as u32))
            .collect()
    }

    // ------------------------------------------------------------------
    // Maintenance operators
    // ------------------------------------------------------------------

    /// `Load(name)` — load a persistent vector.
    pub fn load(&mut self, name: &str) -> VRef {
        self.push(Op::Load {
            name: name.to_string(),
        })
    }

    /// `Persist(name, v)`.
    pub fn persist(&mut self, name: &str, v: VRef) -> VRef {
        self.push(Op::Persist {
            name: name.to_string(),
            v,
        })
    }

    /// A length-1 constant vector with attribute `.val`.
    pub fn constant(&mut self, value: impl Into<ScalarValue>) -> VRef {
        self.push(Op::Constant {
            out: KeyPath::val(),
            value: value.into(),
            like: None,
        })
    }

    /// A constant broadcast to the length of `like` (Figure 8's
    /// `.globalPartition = Constant(0)`).
    pub fn constant_like(&mut self, value: impl Into<ScalarValue>, like: VRef) -> VRef {
        self.push(Op::Constant {
            out: KeyPath::val(),
            value: value.into(),
            like: Some(like),
        })
    }

    // ------------------------------------------------------------------
    // Elementwise operators
    // ------------------------------------------------------------------

    /// Fully general binary operator.
    pub fn binary_kp(
        &mut self,
        op: BinOp,
        lhs: VRef,
        lhs_kp: impl Into<KeyPath>,
        rhs: VRef,
        rhs_kp: impl Into<KeyPath>,
        out: impl Into<KeyPath>,
    ) -> VRef {
        self.push(Op::Binary {
            op,
            out: out.into(),
            lhs,
            lhs_kp: lhs_kp.into(),
            rhs,
            rhs_kp: rhs_kp.into(),
        })
    }

    /// Binary operator over the default `.val` attributes.
    pub fn binary(&mut self, op: BinOp, lhs: VRef, rhs: VRef) -> VRef {
        self.binary_kp(op, lhs, KeyPath::val(), rhs, KeyPath::val(), KeyPath::val())
    }

    /// Binary operator with a broadcast scalar right-hand side
    /// (`Divide(ids, partitionSize)` with `partitionSize := Constant(1024)`).
    pub fn binary_const(
        &mut self,
        op: BinOp,
        lhs: VRef,
        lhs_kp: impl Into<KeyPath>,
        rhs: impl Into<ScalarValue>,
        out: impl Into<KeyPath>,
    ) -> VRef {
        let c = self.constant(rhs);
        self.binary_kp(op, lhs, lhs_kp, c, KeyPath::val(), out)
    }

    /// `Add` over `.val`.
    pub fn add(&mut self, lhs: VRef, rhs: VRef) -> VRef {
        self.binary(BinOp::Add, lhs, rhs)
    }

    /// `Subtract` over `.val`.
    pub fn sub(&mut self, lhs: VRef, rhs: VRef) -> VRef {
        self.binary(BinOp::Subtract, lhs, rhs)
    }

    /// `Multiply` over `.val`.
    pub fn mul(&mut self, lhs: VRef, rhs: VRef) -> VRef {
        self.binary(BinOp::Multiply, lhs, rhs)
    }

    /// `Divide` over `.val`.
    pub fn div(&mut self, lhs: VRef, rhs: VRef) -> VRef {
        self.binary(BinOp::Divide, lhs, rhs)
    }

    /// `Divide(.val, const)` — the Figure 3 partition-id idiom.
    pub fn div_const(&mut self, lhs: VRef, rhs: impl Into<ScalarValue>) -> VRef {
        self.binary_const(BinOp::Divide, lhs, KeyPath::val(), rhs, KeyPath::val())
    }

    /// `Modulo(.val, const)` — the Figure 4 SIMD-lane idiom.
    pub fn mod_const(&mut self, lhs: VRef, rhs: impl Into<ScalarValue>) -> VRef {
        self.binary_const(BinOp::Modulo, lhs, KeyPath::val(), rhs, KeyPath::val())
    }

    /// `Multiply(.val, const)`.
    pub fn mul_const(&mut self, lhs: VRef, rhs: impl Into<ScalarValue>) -> VRef {
        self.binary_const(BinOp::Multiply, lhs, KeyPath::val(), rhs, KeyPath::val())
    }

    /// `Add(.val, const)`.
    pub fn add_const(&mut self, lhs: VRef, rhs: impl Into<ScalarValue>) -> VRef {
        self.binary_const(BinOp::Add, lhs, KeyPath::val(), rhs, KeyPath::val())
    }

    /// `Subtract(.val, const)`.
    pub fn sub_const(&mut self, lhs: VRef, rhs: impl Into<ScalarValue>) -> VRef {
        self.binary_const(BinOp::Subtract, lhs, KeyPath::val(), rhs, KeyPath::val())
    }

    /// `Greater(.val, const)`.
    pub fn greater_const(&mut self, lhs: VRef, rhs: impl Into<ScalarValue>) -> VRef {
        self.binary_const(BinOp::Greater, lhs, KeyPath::val(), rhs, KeyPath::val())
    }

    // ------------------------------------------------------------------
    // Data-parallel operators
    // ------------------------------------------------------------------

    /// Fully general `Zip`.
    pub fn zip_kp(
        &mut self,
        out1: impl Into<KeyPath>,
        v1: VRef,
        kp1: impl Into<KeyPath>,
        out2: impl Into<KeyPath>,
        v2: VRef,
        kp2: impl Into<KeyPath>,
    ) -> VRef {
        self.push(Op::Zip {
            out1: out1.into(),
            v1,
            kp1: kp1.into(),
            out2: out2.into(),
            v2,
            kp2: kp2.into(),
        })
    }

    /// Merge all attributes of `v1` and `v2` into one vector (root zips).
    pub fn zip_merge(&mut self, v1: VRef, v2: VRef) -> VRef {
        self.zip_kp(
            KeyPath::root(),
            v1,
            KeyPath::root(),
            KeyPath::root(),
            v2,
            KeyPath::root(),
        )
    }

    /// `Project(.out, v, .kp)`.
    pub fn project(&mut self, v: VRef, kp: impl Into<KeyPath>, out: impl Into<KeyPath>) -> VRef {
        self.push(Op::Project {
            out: out.into(),
            v,
            kp: kp.into(),
        })
    }

    /// `Upsert(v, .out, src, .kp)`.
    pub fn upsert(
        &mut self,
        v: VRef,
        out: impl Into<KeyPath>,
        src: VRef,
        kp: impl Into<KeyPath>,
    ) -> VRef {
        self.push(Op::Upsert {
            v,
            out: out.into(),
            src,
            kp: kp.into(),
        })
    }

    /// `Scatter(values, size_like, positions.val)`.
    pub fn scatter(&mut self, values: VRef, size_like: VRef, positions: VRef) -> VRef {
        self.push(Op::Scatter {
            values,
            size_like,
            runs_kp: None,
            positions,
            pos_kp: KeyPath::val(),
        })
    }

    /// Fully general `Scatter` with a value-run attribute on the size vector.
    pub fn scatter_kp(
        &mut self,
        values: VRef,
        size_like: VRef,
        runs_kp: Option<KeyPath>,
        positions: VRef,
        pos_kp: impl Into<KeyPath>,
    ) -> VRef {
        self.push(Op::Scatter {
            values,
            size_like,
            runs_kp,
            positions,
            pos_kp: pos_kp.into(),
        })
    }

    /// `Gather(source, positions.val)`.
    pub fn gather(&mut self, source: VRef, positions: VRef) -> VRef {
        self.push(Op::Gather {
            source,
            positions,
            pos_kp: KeyPath::val(),
        })
    }

    /// `Gather` with an explicit position attribute.
    pub fn gather_kp(&mut self, source: VRef, positions: VRef, pos_kp: impl Into<KeyPath>) -> VRef {
        self.push(Op::Gather {
            source,
            positions,
            pos_kp: pos_kp.into(),
        })
    }

    /// `Materialize(v)` — force full materialization.
    pub fn materialize(&mut self, v: VRef) -> VRef {
        self.push(Op::Materialize { v, ctrl: None })
    }

    /// `Materialize(v, ctrl.kp)` — chunked (X100-style) materialization.
    pub fn materialize_ctrl(&mut self, v: VRef, ctrl: VRef, kp: impl Into<KeyPath>) -> VRef {
        self.push(Op::Materialize {
            v,
            ctrl: Some((ctrl, kp.into())),
        })
    }

    /// `Break(v)` — fragment boundary tuning hint.
    pub fn break_at(&mut self, v: VRef) -> VRef {
        self.push(Op::Break { v, ctrl: None })
    }

    /// `Break(v, ctrl.kp)`.
    pub fn break_ctrl(&mut self, v: VRef, ctrl: VRef, kp: impl Into<KeyPath>) -> VRef {
        self.push(Op::Break {
            v,
            ctrl: Some((ctrl, kp.into())),
        })
    }

    /// `Partition(.out, v.kp, pivots.pv)` — scatter positions grouping
    /// `v.kp` by pivot buckets (Figure 10).
    pub fn partition(
        &mut self,
        v: VRef,
        kp: impl Into<KeyPath>,
        pivots: VRef,
        pivot_kp: impl Into<KeyPath>,
    ) -> VRef {
        self.push(Op::Partition {
            out: KeyPath::val(),
            v,
            kp: kp.into(),
            pivots,
            pivot_kp: pivot_kp.into(),
        })
    }

    // ------------------------------------------------------------------
    // Fold operators
    // ------------------------------------------------------------------

    /// Fully general `FoldSelect`.
    pub fn fold_select_kp(
        &mut self,
        v: VRef,
        fold_kp: Option<KeyPath>,
        sel_kp: impl Into<KeyPath>,
        out: impl Into<KeyPath>,
    ) -> VRef {
        self.push(Op::FoldSelect {
            out: out.into(),
            v,
            fold_kp,
            sel_kp: sel_kp.into(),
        })
    }

    /// Global (single-run) `FoldSelect` over `.val`.
    pub fn fold_select_global(&mut self, v: VRef) -> VRef {
        self.fold_select_kp(v, None, KeyPath::val(), KeyPath::val())
    }

    /// `FoldSelect` controlled by a separate control vector: zips
    /// `ctrl.val` onto `v` as `.fold` first (the Figure 8 pattern).
    pub fn fold_select(&mut self, ctrl: VRef, v: VRef) -> VRef {
        let zipped = self.zip_kp(
            KeyPath::new(".fold"),
            ctrl,
            KeyPath::val(),
            KeyPath::new(".val"),
            v,
            KeyPath::val(),
        );
        self.fold_select_kp(
            zipped,
            Some(KeyPath::new(".fold")),
            KeyPath::val(),
            KeyPath::val(),
        )
    }

    /// Fully general fold aggregate.
    pub fn fold_agg_kp(
        &mut self,
        agg: AggKind,
        v: VRef,
        fold_kp: Option<KeyPath>,
        val_kp: impl Into<KeyPath>,
        out: impl Into<KeyPath>,
    ) -> VRef {
        self.push(Op::FoldAgg {
            agg,
            out: out.into(),
            v,
            fold_kp,
            val_kp: val_kp.into(),
        })
    }

    /// `FoldSum` controlled by a separate control vector (auto-zip).
    pub fn fold_sum(&mut self, ctrl: VRef, v: VRef) -> VRef {
        let zipped = self.zip_kp(
            KeyPath::new(".fold"),
            ctrl,
            KeyPath::val(),
            KeyPath::new(".val"),
            v,
            KeyPath::val(),
        );
        self.fold_agg_kp(
            AggKind::Sum,
            zipped,
            Some(KeyPath::new(".fold")),
            KeyPath::val(),
            KeyPath::val(),
        )
    }

    /// Global `FoldSum` over `.val` (single run).
    pub fn fold_sum_global(&mut self, v: VRef) -> VRef {
        self.fold_agg_kp(AggKind::Sum, v, None, KeyPath::val(), KeyPath::val())
    }

    /// Global `FoldMin` over `.val`.
    pub fn fold_min_global(&mut self, v: VRef) -> VRef {
        self.fold_agg_kp(AggKind::Min, v, None, KeyPath::val(), KeyPath::val())
    }

    /// Global `FoldMax` over `.val`.
    pub fn fold_max_global(&mut self, v: VRef) -> VRef {
        self.fold_agg_kp(AggKind::Max, v, None, KeyPath::val(), KeyPath::val())
    }

    /// `FoldCount` — the paper's macro on top of `FoldSum` (§3.1.3):
    /// attaches a ones-attribute and sums it per run of `fold_kp`.
    pub fn fold_count_kp(&mut self, v: VRef, fold_kp: Option<KeyPath>) -> VRef {
        let ones = self.constant_like(1i64, v);
        let zipped = self.zip_kp(
            KeyPath::root(),
            v,
            KeyPath::root(),
            KeyPath::new(".__ones"),
            ones,
            KeyPath::val(),
        );
        self.fold_agg_kp(
            AggKind::Sum,
            zipped,
            fold_kp,
            KeyPath::new(".__ones"),
            KeyPath::val(),
        )
    }

    /// Fully general `FoldScan` (per-run inclusive prefix sum).
    pub fn fold_scan_kp(
        &mut self,
        v: VRef,
        fold_kp: Option<KeyPath>,
        val_kp: impl Into<KeyPath>,
        out: impl Into<KeyPath>,
    ) -> VRef {
        self.push(Op::FoldScan {
            out: out.into(),
            v,
            fold_kp,
            val_kp: val_kp.into(),
        })
    }

    /// Global `FoldScan` over `.val`.
    pub fn fold_scan_global(&mut self, v: VRef) -> VRef {
        self.fold_scan_kp(v, None, KeyPath::val(), KeyPath::val())
    }

    // ------------------------------------------------------------------
    // Shape operators
    // ------------------------------------------------------------------

    /// `Range(from, len, step)` with a fixed length.
    pub fn range(&mut self, from: i64, len: usize, step: i64) -> VRef {
        self.push(Op::Range {
            out: KeyPath::val(),
            from,
            size: SizeSpec::Fixed(len),
            step,
        })
    }

    /// `Range(from, |v|, step)` sized like another vector (Figure 3 line 2).
    pub fn range_like(&mut self, from: i64, like: VRef, step: i64) -> VRef {
        self.push(Op::Range {
            out: KeyPath::val(),
            from,
            size: SizeSpec::Like(like),
            step,
        })
    }

    /// `Cross(v1, v2)` — position cross product with attributes
    /// `.pos1`/`.pos2`.
    pub fn cross(&mut self, v1: VRef, v2: VRef) -> VRef {
        self.push(Op::Cross {
            out1: KeyPath::new(".pos1"),
            v1,
            out2: KeyPath::new(".pos2"),
            v2,
        })
    }
}

impl fmt::Display for Program {
    /// Pretty-print in the paper's SSA style (Figure 3).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, stmt) in self.stmts.iter().enumerate() {
            let id = VRef(i as u32);
            match &stmt.label {
                Some(l) => write!(f, "{id} {l} := ")?,
                None => write!(f, "{id} := ")?,
            }
            write!(f, "{}(", stmt.op.name())?;
            let inputs = stmt.op.inputs();
            for (j, input) in inputs.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{input}")?;
            }
            match &stmt.op {
                Op::Load { name } | Op::Persist { name, .. } => {
                    if !inputs.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name:?}")?;
                }
                Op::Constant { value, .. } => {
                    if !inputs.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "{value}")?;
                }
                Op::Range { from, step, .. } => {
                    if !inputs.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "from={from}, step={step}")?;
                }
                _ => {}
            }
            writeln!(f, ")")?;
        }
        for r in &self.returns {
            writeln!(f, "return {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's Figure 3 program (multithreaded hierarchical
    /// aggregation) and check its structure.
    #[test]
    fn figure3_builds() {
        let mut p = Program::new();
        let input = p.load("input");
        let ids = p.range_like(0, input, 1);
        let part_ids = p.div_const(ids, 1024);
        p.label(part_ids, "partitionIDs");
        let positions = p.partition(part_ids, KeyPath::val(), part_ids, KeyPath::val());
        let with_part = p.zip_kp(
            KeyPath::new(".val"),
            input,
            KeyPath::val(),
            KeyPath::new(".partition"),
            part_ids,
            KeyPath::val(),
        );
        let scattered = p.scatter(with_part, with_part, positions);
        let psum = p.fold_agg_kp(
            AggKind::Sum,
            scattered,
            Some(KeyPath::new(".partition")),
            KeyPath::new(".val"),
            KeyPath::val(),
        );
        let total = p.fold_sum_global(psum);
        p.ret(total);

        assert!(p.validate().is_ok());
        let text = p.to_string();
        assert!(text.contains("FoldSum"));
        assert!(text.contains("partitionIDs"));
    }

    #[test]
    fn validate_rejects_forward_refs() {
        let mut p = Program::new();
        // Hand-craft an invalid forward reference.
        p.push(Op::Project {
            out: KeyPath::val(),
            v: VRef(5),
            kp: KeyPath::val(),
        });
        let v = p.load("t");
        p.ret(v);
        assert!(matches!(
            p.validate(),
            Err(VoodooError::InvalidReference { .. })
        ));
    }

    #[test]
    fn validate_rejects_empty() {
        let p = Program::new();
        assert_eq!(p.validate(), Err(VoodooError::EmptyProgram));
        let mut p2 = Program::new();
        p2.load("t");
        assert_eq!(p2.validate(), Err(VoodooError::EmptyProgram));
    }

    #[test]
    fn consumers_found() {
        let mut p = Program::new();
        let a = p.load("t");
        let b = p.add_const(a, 1i64);
        let c = p.mul_const(a, 2i64);
        p.ret(b);
        p.ret(c);
        let cons = p.consumers(a);
        assert_eq!(cons.len(), 2);
    }

    #[test]
    fn fold_count_expands_to_fold_sum() {
        let mut p = Program::new();
        let v = p.load("t");
        let c = p.fold_count_kp(v, None);
        p.ret(c);
        assert!(matches!(
            p.stmt(c).op,
            Op::FoldAgg {
                agg: AggKind::Sum,
                ..
            }
        ));
    }
}
