//! # voodoo-compile — the fragment compiler and CPU backend
//!
//! This crate is the Rust analog of the paper's OpenCL backend (§3.1). It
//! compiles Voodoo programs into **fragments** — maximal fused pipelines of
//! operators sharing one iteration domain — and executes them data-parallel
//! over a thread pool. Reproduced compilation techniques:
//!
//! * **Extent/Intent assignment** (§3.1.1): every fragment carries the
//!   degree of data parallelism (extent) and the sequential iterations per
//!   work item (intent), derived from control-vector [`voodoo_core::RunMeta`].
//! * **Pipelining / operator fusion**: elementwise operators, gathers and
//!   folds of the same extent are fused into a single loop; materialization
//!   happens only at fragment seams (the HyPeR-inspired model).
//! * **Virtual control vectors**: `Range`/`Constant`/`Cross` attributes are
//!   never materialized — they evaluate from their closed form (the
//!   "purple operators" of Figure 8).
//! * **Empty-slot suppression** (§3.1.2): controlled-fold outputs allocate
//!   one slot per *run*, not per input element; the padded layout is
//!   reconstructed only if observed.
//! * **Virtual scatter** (§3.1.3): `Partition` → `Scatter` → `FoldAgg`
//!   group-bys never materialize the scattered vector; they run as a single
//!   accumulation pass over dense buckets.
//! * **Vectorized selection** (§5.3): a chunk-controlled `FoldSelect`
//!   followed by `Gather`+`Fold` executes as the paper's two-loop,
//!   cache-resident position-buffer pipeline.
//! * **Predication** as a physical tuning flag ([`ExecOptions`], §4
//!   "optimization flags"): position emission uses branch-free cursor
//!   arithmetic instead of an `if`.
//!
//! Execution doubles as a **profiler**: every kernel can count architectural
//! events (branches, int/fp ops, sequential/random loads, writes, barriers)
//! which the `voodoo-gpusim` crate prices with a GPU cost model.
//!
//! Fragments can also be rendered as OpenCL-C-like kernel source
//! ([`kernel::render_opencl`]) to preserve the paper's code-generation story.

pub mod device;
pub mod exec;
pub mod expr;
pub mod kernel;
pub mod plan;
pub mod pool;
pub mod profile;
pub mod repr;

pub use device::Device;
pub use exec::{ExecOptions, Executor};
pub use plan::{CompiledProgram, Compiler, Fragment, FragmentKind};
pub use pool::MorselPool;
pub use profile::EventProfile;
pub use repr::MatVec;

#[cfg(test)]
mod tests;
