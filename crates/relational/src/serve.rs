//! The serving front door: a bounded admission queue in front of a
//! shared [`Engine`], drained by a fixed worker pool with per-session
//! weighted-fair dequeueing and explicit overload shedding.
//!
//! PR 2 made the stack thread-safe, but a thread-per-statement fan-out
//! has no backpressure: under offered load beyond capacity it just grows
//! threads and latency without bound. This module is the missing front
//! door. Requests are [`StatementSpec`]s; admission is explicit:
//!
//! * [`ServeSession::submit`] — non-blocking. A full queue **sheds** the
//!   request ([`SubmitError::QueueFull`]) instead of queueing it; the
//!   shed is counted per session and on the engine
//!   ([`crate::EngineMetrics::sheds`]).
//! * [`ServeSession::submit_wait`] — blocking admission with an optional
//!   deadline; expiry returns [`SubmitError::Timeout`], never a hang.
//!
//! Admitted work returns a [`Receipt`] — a one-shot future on std
//! primitives (`Mutex` + `Condvar`, no new dependencies). Workers drain
//! the queue in **weighted-fair** order across sessions (min virtual
//! time, FIFO within a session), execute through the engine's plan cache
//! and record into its latency reservoir; a worker panic fails only the
//! panicking receipt ([`ServeError::WorkerPanic`]) while the pool keeps
//! serving.
//!
//! Serve workers do not nest thread spawns for intra-statement
//! parallelism: each worker carries a parallelism *budget* of
//! `cores / workers` ([`voodoo_compile::exec::set_parallelism_budget`])
//! that caps how many morsels its statements offer the engine's
//! persistent work-stealing pool ([`Engine::morsel_pool`]) — admission
//! workers and morsel workers lease the same machine instead of
//! multiplying against each other.
//!
//! ```
//! use std::sync::Arc;
//! use voodoo_relational::{Engine, ServeConfig, StatementSpec};
//! use voodoo_tpch::queries::Query;
//!
//! let engine = Arc::new(Engine::tpch(0.002));
//! let server = engine.serve(ServeConfig::default().with_workers(2));
//! let alice = server.session(1);
//! let receipt = alice.submit(StatementSpec::tpch(Query::Q6)).unwrap();
//! let rows = receipt.wait().unwrap().into_rows();
//! assert!(!rows.is_empty());
//! assert_eq!(alice.stats().served, 1);
//! assert!(engine.metrics().queries_served >= 1);
//! server.shutdown();
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use voodoo_core::{Diagnostic, VoodooError};

use crate::engine::{Engine, StatementSpec};
use crate::session::StatementOutput;

/// Default bound on admitted-but-not-yet-executing statements.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Weight granularity for the fair scheduler's virtual clock.
const WFQ_SCALE: u64 = 1 << 20;

// ---------------------------------------------------------------------
// Configuration and error types
// ---------------------------------------------------------------------

/// Sizing for a [`ServerHandle`]: how much work may wait, and how many
/// workers drain it.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum admitted statements waiting to execute (excess is shed).
    pub queue_capacity: usize,
    /// Fixed worker-pool size.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(8),
        }
    }
}

impl ServeConfig {
    /// Override the queue capacity (minimum 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Override the worker count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers.max(1);
        self
    }
}

/// Why a submission was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity and [`ServeSession::submit`] does not
    /// block: the request was shed.
    QueueFull,
    /// [`ServeSession::submit_wait`]'s deadline expired before space
    /// opened up.
    Timeout,
    /// The server has shut down.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue full: request shed"),
            SubmitError::Timeout => write!(f, "admission deadline expired"),
            SubmitError::Shutdown => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *admitted* statement failed to produce output.
#[derive(Debug)]
pub enum ServeError {
    /// The engine executed the statement and returned an error.
    Engine(VoodooError),
    /// The executing worker panicked; only this receipt fails — the pool
    /// keeps serving.
    WorkerPanic(String),
    /// [`Receipt::wait_deadline`] expired before the statement completed.
    /// (Shutdown is not a receipt failure: [`ServerHandle::shutdown`]
    /// drains every admitted statement before the workers exit.)
    Timeout,
}

impl ServeError {
    /// Collapse into the engine-wide error type (used by
    /// [`Engine::run_batch`], whose callers predate the serve layer).
    pub fn into_engine_error(self) -> VoodooError {
        match self {
            ServeError::Engine(e) => e,
            ServeError::WorkerPanic(msg) => {
                VoodooError::Backend(format!("worker panicked during execution: {msg}"))
            }
            ServeError::Timeout => VoodooError::Backend("serve deadline expired".to_string()),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            ServeError::Timeout => write!(f, "deadline expired before completion"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Result of one admitted statement.
pub type ServeResult = Result<StatementOutput, ServeError>;

// ---------------------------------------------------------------------
// Receipt: a one-shot completion future on std primitives
// ---------------------------------------------------------------------

/// A finished statement: its result plus the admission-to-completion
/// sojourn (queue wait + execution) — the open-loop latency a client
/// observes.
#[derive(Debug)]
pub struct Completion {
    /// The statement's outcome.
    pub result: ServeResult,
    /// Submit-to-completion time.
    pub sojourn: Duration,
}

struct ReceiptState {
    slot: Mutex<Option<(ServeResult, Duration)>>,
    done: Condvar,
    submitted_at: Instant,
}

impl ReceiptState {
    fn fulfill(&self, result: ServeResult) {
        let sojourn = self.submitted_at.elapsed();
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some((result, sojourn));
        self.done.notify_all();
    }
}

/// A typed completion handle for one admitted statement — a one-shot
/// channel on `Mutex` + `Condvar`.
pub struct Receipt {
    state: Arc<ReceiptState>,
}

impl std::fmt::Debug for Receipt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let done = self.state.slot.lock().map(|s| s.is_some()).unwrap_or(false);
        f.debug_struct("Receipt").field("done", &done).finish()
    }
}

impl Receipt {
    /// Block until the statement completes.
    pub fn wait(self) -> ServeResult {
        self.wait_completion().result
    }

    /// Block until completion, also reporting the sojourn time.
    pub fn wait_completion(self) -> Completion {
        let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((result, sojourn)) = slot.take() {
                return Completion { result, sojourn };
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until the statement completes or `deadline` passes —
    /// expiry returns [`ServeError::Timeout`], never a hang. (The
    /// statement itself stays queued and will still execute; only the
    /// caller stops waiting.)
    pub fn wait_deadline(self, deadline: Instant) -> ServeResult {
        let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((result, _)) = slot.take() {
                return result;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::Timeout);
            }
            slot = self
                .state
                .done
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Whether the statement has completed (non-blocking, non-consuming).
    pub fn is_done(&self) -> bool {
        self.state
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Non-blocking poll: the completion if the statement has finished,
    /// or the receipt back if it has not. Consuming `self` keeps the
    /// one-shot contract honest — a receipt whose result was taken can
    /// no longer be `wait`ed on (which would block forever).
    pub fn try_take(self) -> Result<Completion, Receipt> {
        let taken = self
            .state
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        match taken {
            Some((result, sojourn)) => Ok(Completion { result, sojourn }),
            None => Err(self),
        }
    }
}

// ---------------------------------------------------------------------
// Queue state
// ---------------------------------------------------------------------

/// Per-session serving counters (cumulative since the session opened).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionServeStats {
    /// Statements admitted to the queue.
    pub submitted: u64,
    /// Statements executed to completion (successfully or not).
    pub served: u64,
    /// Statements refused admission (queue full / deadline expiry).
    pub shed: u64,
    /// Plan-cache hits attributed to this session's executions.
    pub cache_hits: u64,
    /// Plan-cache misses (preparations) attributed to this session.
    pub cache_misses: u64,
}

#[derive(Default)]
struct SessionCounters {
    submitted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl SessionCounters {
    fn snapshot(&self) -> SessionServeStats {
        SessionServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }
}

struct Job {
    spec: StatementSpec,
    receipt: Arc<ReceiptState>,
    /// The submitting session's counters, carried with the job so the
    /// executing worker never re-locks the queue to attribute work.
    counters: Arc<SessionCounters>,
}

struct SessionSlot {
    weight: u64,
    /// Virtual time consumed: advances by `WFQ_SCALE / weight` per
    /// dequeued statement, so heavier sessions advance slower and get
    /// proportionally more turns.
    vtime: u64,
    queue: VecDeque<Job>,
    counters: Arc<SessionCounters>,
}

struct QueueState {
    sessions: Vec<SessionSlot>,
    /// Admitted statements not yet handed to a worker (sum of queues).
    queued: usize,
    /// Virtual start time of the most recently dequeued statement; new
    /// or re-activated sessions join at this clock so an idle session
    /// cannot bank credit and starve the others.
    global_vtime: u64,
    shutdown: bool,
}

struct ServeShared {
    engine: Arc<Engine>,
    capacity: usize,
    state: Mutex<QueueState>,
    /// Workers wait here for jobs.
    job_ready: Condvar,
    /// Blocking submitters wait here for queue space.
    space_ready: Condvar,
    submitted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
}

impl ServeShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        // A panicking worker fulfills its receipt and never poisons the
        // queue mid-update, so the poison flag carries no information.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pop the next job in weighted-fair order: the non-empty session
    /// with the smallest virtual time (ties broken by session id), FIFO
    /// within the session.
    fn dequeue(&self, st: &mut QueueState) -> Option<Job> {
        let idx = st
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.queue.is_empty())
            .min_by_key(|(i, s)| (s.vtime, *i))
            .map(|(i, _)| i)?;
        let slot = &mut st.sessions[idx];
        st.global_vtime = slot.vtime;
        // `.max(1)`: a weight above WFQ_SCALE must still advance the
        // clock, or that session would win every tie and starve the rest.
        slot.vtime += (WFQ_SCALE / slot.weight).max(1);
        let job = slot.queue.pop_front().expect("non-empty by filter");
        st.queued -= 1;
        self.engine.queue_depth_dec();
        Some(job)
    }

    fn admit(&self, st: &mut QueueState, session: usize, spec: StatementSpec) -> Receipt {
        let receipt = Arc::new(ReceiptState {
            slot: Mutex::new(None),
            done: Condvar::new(),
            submitted_at: Instant::now(),
        });
        let slot = &mut st.sessions[session];
        if slot.queue.is_empty() {
            // Re-activating after idling: join at the current clock.
            slot.vtime = slot.vtime.max(st.global_vtime);
        }
        slot.counters.submitted.fetch_add(1, Ordering::Relaxed);
        slot.queue.push_back(Job {
            spec,
            receipt: Arc::clone(&receipt),
            counters: Arc::clone(&slot.counters),
        });
        st.queued += 1;
        self.engine.queue_depth_inc();
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.job_ready.notify_one();
        Receipt { state: receipt }
    }

    fn record_shed(&self, st: &QueueState, session: usize) {
        st.sessions[session]
            .counters
            .shed
            .fetch_add(1, Ordering::Relaxed);
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.engine.record_shed();
    }

    fn submit(&self, session: usize, spec: StatementSpec) -> Result<Receipt, SubmitError> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(SubmitError::Shutdown);
        }
        if st.queued >= self.capacity {
            self.record_shed(&st, session);
            return Err(SubmitError::QueueFull);
        }
        Ok(self.admit(&mut st, session, spec))
    }

    fn submit_wait(
        &self,
        session: usize,
        spec: StatementSpec,
        deadline: Option<Instant>,
    ) -> Result<Receipt, SubmitError> {
        let mut st = self.lock();
        loop {
            if st.shutdown {
                return Err(SubmitError::Shutdown);
            }
            if st.queued < self.capacity {
                return Ok(self.admit(&mut st, session, spec));
            }
            match deadline {
                None => {
                    st = self.space_ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        self.record_shed(&st, session);
                        return Err(SubmitError::Timeout);
                    }
                    st = self
                        .space_ready
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------

fn worker_loop(shared: Arc<ServeShared>) {
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if let Some(job) = shared.dequeue(&mut st) {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.job_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        // A slot just opened: wake one blocked submitter.
        shared.space_ready.notify_one();

        let counters = &job.counters;
        let started = Instant::now();
        shared.engine.cache_trace_begin();
        let outcome = catch_unwind(AssertUnwindSafe(|| shared.engine.run_spec(&job.spec)));
        let (hits, misses) = shared.engine.cache_trace_end();
        counters.cache_hits.fetch_add(hits, Ordering::Relaxed);
        counters.cache_misses.fetch_add(misses, Ordering::Relaxed);
        let result = match outcome {
            Ok(Ok(output)) => Ok(output),
            Ok(Err(e)) => Err(ServeError::Engine(e)),
            Err(panic) => {
                // The statement never reached its own metrics record;
                // count the failure here so the failure rate covers
                // panics too.
                shared.engine.record_execution(started, false);
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(ServeError::WorkerPanic(msg))
            }
        };
        counters.served.fetch_add(1, Ordering::Relaxed);
        shared.served.fetch_add(1, Ordering::Relaxed);
        job.receipt.fulfill(result);
    }
}

// ---------------------------------------------------------------------
// Public handles
// ---------------------------------------------------------------------

/// Aggregate serving counters for one [`ServerHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Statements admitted since the server started.
    pub submitted: u64,
    /// Statements executed to completion.
    pub served: u64,
    /// Statements refused admission.
    pub shed: u64,
    /// Admitted statements currently waiting for a worker.
    pub queue_depth: usize,
    /// The admission bound.
    pub capacity: usize,
    /// Worker-pool size.
    pub workers: usize,
}

/// The serving front door over one shared [`Engine`]: accepts
/// [`StatementSpec`]s from any thread, sheds on overload, and drains
/// through a fixed worker pool in weighted-fair session order.
///
/// Dropping the handle shuts the pool down gracefully (queued work is
/// drained first); [`ServerHandle::shutdown`] does the same explicitly.
pub struct ServerHandle {
    shared: Arc<ServeShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    worker_count: usize,
}

impl ServerHandle {
    pub(crate) fn start(engine: Arc<Engine>, config: ServeConfig) -> ServerHandle {
        let capacity = config.queue_capacity.max(1);
        let worker_count = config.workers.max(1);
        let shared = Arc::new(ServeShared {
            engine,
            capacity,
            state: Mutex::new(QueueState {
                // Session 0 backs the handle-level submit helpers.
                sessions: vec![SessionSlot {
                    weight: 1,
                    vtime: 0,
                    queue: VecDeque::new(),
                    counters: Arc::new(SessionCounters::default()),
                }],
                queued: 0,
                global_vtime: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            space_ready: Condvar::new(),
            submitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        });
        // Lease the machine between the admission pool and the shared
        // morsel pool: each serve worker carries a parallelism budget of
        // `cores / workers`, which caps how many morsel workers a
        // statement's `Parallelism::Auto` (and even `Fixed(n)`) resolves
        // to — i.e. how many slots of the engine's persistent
        // work-stealing pool it *offers* work for. The pool's own worker
        // count bounds what actually runs at once, so a saturated serve
        // pool composes to the machine instead of `workers × cores` —
        // and no statement spawns threads of its own anymore.
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let intra_budget = (cores / worker_count).max(1);
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("voodoo-serve-{i}"))
                    .spawn(move || {
                        voodoo_compile::exec::set_parallelism_budget(Some(intra_budget));
                        worker_loop(shared)
                    })
                    .expect("spawn serve worker")
            })
            .collect();
        ServerHandle {
            shared,
            workers: Mutex::new(workers),
            worker_count,
        }
    }

    /// Open a weighted serving session. Weights are relative: under
    /// saturation a session receives `weight / total_weight` of the
    /// worker pool's attention; FIFO order holds within a session.
    pub fn session(&self, weight: u32) -> ServeSession {
        let counters = Arc::new(SessionCounters::default());
        let mut st = self.shared.lock();
        let idx = st.sessions.len();
        let vtime = st.global_vtime;
        st.sessions.push(SessionSlot {
            weight: weight.max(1) as u64,
            vtime,
            queue: VecDeque::new(),
            counters: Arc::clone(&counters),
        });
        drop(st);
        ServeSession {
            shared: Arc::clone(&self.shared),
            idx,
            counters,
        }
    }

    /// Non-blocking admission on the handle's built-in session 0; a full
    /// queue sheds ([`SubmitError::QueueFull`]).
    pub fn submit(&self, spec: StatementSpec) -> Result<Receipt, SubmitError> {
        self.shared.submit(0, spec)
    }

    /// Blocking admission on session 0: waits for queue space until the
    /// optional deadline ([`SubmitError::Timeout`] on expiry).
    pub fn submit_wait(
        &self,
        spec: StatementSpec,
        deadline: Option<Instant>,
    ) -> Result<Receipt, SubmitError> {
        self.shared.submit_wait(0, spec, deadline)
    }

    /// Static diagnostics for a spec, synchronously and without taking a
    /// queue slot — a pre-admission check that a statement will pass every
    /// backend's prepare-time analyzer. See [`Engine::verify_spec`].
    pub fn verify(&self, spec: &StatementSpec) -> Vec<Diagnostic> {
        self.shared.engine.verify_spec(spec)
    }

    /// Aggregate serving counters.
    pub fn stats(&self) -> ServeStats {
        let queue_depth = self.shared.lock().queued;
        ServeStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            served: self.shared.served.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            queue_depth,
            capacity: self.shared.capacity,
            workers: self.worker_count,
        }
    }

    /// Admitted statements currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().queued
    }

    /// Stop accepting work, drain the queue, and join the workers.
    /// Already-admitted statements still execute; blocked submitters get
    /// [`SubmitError::Shutdown`]. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        self.shared.space_ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A weighted admission handle onto a [`ServerHandle`]. Cheap to clone;
/// safe to share across threads.
#[derive(Clone)]
pub struct ServeSession {
    shared: Arc<ServeShared>,
    idx: usize,
    /// Captured at creation so [`ServeSession::stats`] never touches the
    /// admission-queue lock (the counters are plain atomics).
    counters: Arc<SessionCounters>,
}

impl ServeSession {
    /// Non-blocking admission; a full queue sheds the request
    /// ([`SubmitError::QueueFull`]) and bumps the shed counters.
    pub fn submit(&self, spec: StatementSpec) -> Result<Receipt, SubmitError> {
        self.shared.submit(self.idx, spec)
    }

    /// Blocking admission: waits for queue space until the optional
    /// deadline; expiry returns [`SubmitError::Timeout`], never a hang.
    pub fn submit_wait(
        &self,
        spec: StatementSpec,
        deadline: Option<Instant>,
    ) -> Result<Receipt, SubmitError> {
        self.shared.submit_wait(self.idx, spec, deadline)
    }

    /// This session's cumulative serving counters (lock-free: the
    /// counters are atomics captured at session creation).
    pub fn stats(&self) -> SessionServeStats {
        self.counters.snapshot()
    }

    /// Static diagnostics for a spec, synchronously and without taking a
    /// queue slot. See [`ServerHandle::verify`].
    pub fn verify(&self, spec: &StatementSpec) -> Vec<Diagnostic> {
        self.shared.engine.verify_spec(spec)
    }
}
