//! Quickstart: the paper's Figure 3 / Figure 4 walkthrough, through the
//! unified `Session` API.
//!
//! Builds the multithreaded hierarchical aggregation of Figure 3, runs the
//! *same statement* on the interpreter, the compiled CPU and the simulated
//! GPU (`.run_on("...")` is the whole re-target), then applies the paper's
//! famous two-line diff (Figure 4: `Divide` → `Modulo`) to re-target the
//! program from multicore partitions to SIMD lanes. Finally, it serves
//! the statement from several client threads at once: sessions are cheap
//! clones onto one shared engine, so concurrency is a `.clone()` away.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use voodoo::core::{KeyPath, Program, ScalarValue};
use voodoo::relational::Session;
use voodoo::storage::Catalog;

fn hierarchical_sum(simd: bool) -> Program {
    let mut p = Program::new();
    let input = p.load("input");
    let ids = p.range_like(0, input, 1);
    // The Figure 4 diff: one operator changes, the rest of the program —
    // and every backend — stay identical.
    let part_ids = if simd {
        p.mod_const(ids, 8) // laneCount := 8  (SIMD lanes)
    } else {
        p.div_const(ids, 1024) // partitionSize := 1024  (multicore)
    };
    let psum = p.fold_sum(part_ids, input);
    let total = p.fold_sum_global(psum);
    p.ret(total);
    p
}

fn main() {
    let n = 1 << 16;
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("input", &(1..=n as i64).collect::<Vec<_>>());
    let expected = (n as i64) * (n as i64 + 1) / 2;

    let session = Session::new(cat);
    for (name, simd) in [
        ("multicore (Figure 3)", false),
        ("SIMD lanes (Figure 4)", true),
    ] {
        let p = hierarchical_sum(simd);
        println!("== {name} ==");
        println!("{p}");

        // One statement, three backends — the portability claim as API.
        let stmt = session.program(p);
        for backend in ["interp", "cpu", "gpu"] {
            let out = stmt.run_on(backend).expect("run");
            assert_eq!(
                out.raw().returns[0].value_at(0, &KeyPath::val()),
                Some(ScalarValue::I64(expected))
            );
            println!("{backend:>7}: total = {expected}");
        }

        // The compiled physical plan: fragments with extents and intents,
        // plus the generated OpenCL-style kernels.
        println!("\n{}", stmt.explain().expect("explain"));
    }

    // Serving: four client threads drive the same engine through cloned
    // session handles — no lock is held while a statement executes.
    let stmt = session.program(hierarchical_sum(false));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let handle = session.clone();
            let stmt = &stmt;
            scope.spawn(move || {
                for _ in 0..8 {
                    let out = stmt.run().expect("threaded run");
                    assert_eq!(
                        out.raw().returns[0].value_at(0, &KeyPath::val()),
                        Some(ScalarValue::I64(expected))
                    );
                    assert!(handle.cache_stats().hits > 0); // any handle observes
                }
            });
        }
    });

    let stats = session.cache_stats();
    println!(
        "plan cache: {} prepared, {} served from cache, {} evicted",
        stats.misses, stats.hits, stats.evictions
    );
    let m = session.metrics();
    println!(
        "served {} statements across threads (p50 {:.2} us, p99 {:.2} us)",
        m.queries_served,
        m.p50_seconds.unwrap_or(0.0) * 1e6,
        m.p99_seconds.unwrap_or(0.0) * 1e6
    );
}
