//! Scalar types, values and the elementwise operator kernels.
//!
//! Voodoo vectors hold fixed-size scalar fields (paper §2.1: "We currently
//! only allow scalar types and nested structs as fields"). This module
//! defines the supported scalar types, dynamic scalar values (used by the
//! reference interpreter and as compile-time constants), and the semantics
//! of the binary operators of Table 2.

use std::fmt;

use crate::error::{Result, VoodooError};

/// The scalar types supported in structured vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// Boolean; produced by comparisons, consumed by logical ops and
    /// coerced to 0/1 in arithmetic (used heavily by predication, Fig. 1).
    Bool,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer (also the type of positions / ids).
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl ScalarType {
    /// Size of one value in bytes (used by cost models and persistence).
    pub fn byte_width(self) -> usize {
        match self {
            ScalarType::Bool => 1,
            ScalarType::I32 | ScalarType::F32 => 4,
            ScalarType::I64 | ScalarType::F64 => 8,
        }
    }

    /// Whether the type is an integer (Bool counts, as 0/1).
    pub fn is_integer(self) -> bool {
        matches!(self, ScalarType::Bool | ScalarType::I32 | ScalarType::I64)
    }

    /// Whether the type is a float.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// The OpenCL C spelling of this type (used by the kernel renderer).
    pub fn opencl_name(self) -> &'static str {
        match self {
            ScalarType::Bool => "char",
            ScalarType::I32 => "int",
            ScalarType::I64 => "long",
            ScalarType::F32 => "float",
            ScalarType::F64 => "double",
        }
    }
}

/// A dynamically typed scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarValue {
    /// A boolean.
    Bool(bool),
    /// A 32-bit signed integer.
    I32(i32),
    /// A 64-bit signed integer.
    I64(i64),
    /// A 32-bit float.
    F32(f32),
    /// A 64-bit float.
    F64(f64),
}

impl ScalarValue {
    /// The type of this value.
    pub fn ty(&self) -> ScalarType {
        match self {
            ScalarValue::Bool(_) => ScalarType::Bool,
            ScalarValue::I32(_) => ScalarType::I32,
            ScalarValue::I64(_) => ScalarType::I64,
            ScalarValue::F32(_) => ScalarType::F32,
            ScalarValue::F64(_) => ScalarType::F64,
        }
    }

    /// Integer view (booleans as 0/1, floats truncated).
    pub fn as_i64(&self) -> i64 {
        match *self {
            ScalarValue::Bool(b) => b as i64,
            ScalarValue::I32(v) => v as i64,
            ScalarValue::I64(v) => v,
            ScalarValue::F32(v) => v as i64,
            ScalarValue::F64(v) => v as i64,
        }
    }

    /// Float view.
    pub fn as_f64(&self) -> f64 {
        match *self {
            ScalarValue::Bool(b) => b as i64 as f64,
            ScalarValue::I32(v) => v as f64,
            ScalarValue::I64(v) => v as f64,
            ScalarValue::F32(v) => v as f64,
            ScalarValue::F64(v) => v,
        }
    }

    /// Truthiness: non-zero / true.
    pub fn is_truthy(&self) -> bool {
        match *self {
            ScalarValue::Bool(b) => b,
            ScalarValue::I32(v) => v != 0,
            ScalarValue::I64(v) => v != 0,
            ScalarValue::F32(v) => v != 0.0,
            ScalarValue::F64(v) => v != 0.0,
        }
    }

    /// Cast to the given type (C-like conversion).
    pub fn cast(&self, ty: ScalarType) -> ScalarValue {
        match ty {
            ScalarType::Bool => ScalarValue::Bool(self.is_truthy()),
            ScalarType::I32 => ScalarValue::I32(self.as_i64() as i32),
            ScalarType::I64 => ScalarValue::I64(self.as_i64()),
            ScalarType::F32 => ScalarValue::F32(self.as_f64() as f32),
            ScalarType::F64 => ScalarValue::F64(self.as_f64()),
        }
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarValue::Bool(v) => write!(f, "{v}"),
            ScalarValue::I32(v) => write!(f, "{v}"),
            ScalarValue::I64(v) => write!(f, "{v}"),
            ScalarValue::F32(v) => write!(f, "{v}"),
            ScalarValue::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<bool> for ScalarValue {
    fn from(v: bool) -> Self {
        ScalarValue::Bool(v)
    }
}
impl From<i32> for ScalarValue {
    fn from(v: i32) -> Self {
        ScalarValue::I32(v)
    }
}
impl From<i64> for ScalarValue {
    fn from(v: i64) -> Self {
        ScalarValue::I64(v)
    }
}
impl From<f32> for ScalarValue {
    fn from(v: f32) -> Self {
        ScalarValue::F32(v)
    }
}
impl From<f64> for ScalarValue {
    fn from(v: f64) -> Self {
        ScalarValue::F64(v)
    }
}

/// Binary elementwise operators (paper Table 2, "Maintenance" block).
///
/// `Greater`/`Equals` are the paper's primitive comparisons; the remaining
/// comparison spellings are first-class conveniences that lower to the same
/// machine code and keep generated plans readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Subtract,
    /// Elementwise multiplication.
    Multiply,
    /// Elementwise division (integer division truncates; ÷0 gives 0/ε).
    Divide,
    /// Elementwise remainder.
    Modulo,
    /// Left shift by the right operand.
    BitShift,
    /// Logical conjunction of non-zero-ness.
    LogicalAnd,
    /// Logical disjunction of non-zero-ness.
    LogicalOr,
    /// `lhs > rhs` (paper-primitive comparison).
    Greater,
    /// `lhs >= rhs`.
    GreaterEquals,
    /// `lhs < rhs`.
    Less,
    /// `lhs <= rhs`.
    LessEquals,
    /// `lhs == rhs` (paper-primitive comparison).
    Equals,
    /// `lhs != rhs`.
    NotEquals,
}

impl BinOp {
    /// Whether the result type is `Bool` regardless of the operand types.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Greater
                | BinOp::GreaterEquals
                | BinOp::Less
                | BinOp::LessEquals
                | BinOp::Equals
                | BinOp::NotEquals
        )
    }

    /// Whether this is a logical connective.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogicalAnd | BinOp::LogicalOr)
    }

    /// Numeric type promotion for arithmetic: bool→i32, mixed int/float→f64,
    /// otherwise widest of the pair.
    pub fn promote(lhs: ScalarType, rhs: ScalarType) -> ScalarType {
        use ScalarType::*;
        let widen = |t: ScalarType| if t == Bool { I32 } else { t };
        let (l, r) = (widen(lhs), widen(rhs));
        match (l, r) {
            (I32, I32) => I32,
            (I64, I32) | (I32, I64) | (I64, I64) => I64,
            (F32, F32) => F32,
            (F64, _) | (_, F64) => F64,
            (F32, _) | (_, F32) => F64,
            _ => unreachable!("widen removed Bool"),
        }
    }

    /// The result type of applying this operator to operands of the given
    /// types, or an error if the combination is invalid.
    pub fn result_type(self, lhs: ScalarType, rhs: ScalarType) -> Result<ScalarType> {
        if self.is_comparison() {
            return Ok(ScalarType::Bool);
        }
        if self.is_logical() {
            if lhs.is_float() || rhs.is_float() {
                return Err(VoodooError::TypeMismatch {
                    context: format!("{self:?}"),
                    lhs,
                    rhs,
                });
            }
            return Ok(ScalarType::Bool);
        }
        if (self == BinOp::BitShift || self == BinOp::Modulo) && (lhs.is_float() || rhs.is_float())
        {
            return Err(VoodooError::TypeMismatch {
                context: format!("{self:?}"),
                lhs,
                rhs,
            });
        }
        Ok(Self::promote(lhs, rhs))
    }

    /// Evaluate the operator on two scalar values (reference semantics; the
    /// compiled backend uses typed fast paths that must agree with this).
    ///
    /// Integer division/modulo by zero yields 0 — Voodoo programs are
    /// deterministic and must not trap (paper §2, "Deterministic").
    pub fn eval(self, lhs: ScalarValue, rhs: ScalarValue) -> ScalarValue {
        use BinOp::*;
        match self {
            Greater => ScalarValue::Bool(cmp(lhs, rhs) == std::cmp::Ordering::Greater),
            GreaterEquals => ScalarValue::Bool(cmp(lhs, rhs) != std::cmp::Ordering::Less),
            Less => ScalarValue::Bool(cmp(lhs, rhs) == std::cmp::Ordering::Less),
            LessEquals => ScalarValue::Bool(cmp(lhs, rhs) != std::cmp::Ordering::Greater),
            Equals => ScalarValue::Bool(cmp(lhs, rhs) == std::cmp::Ordering::Equal),
            NotEquals => ScalarValue::Bool(cmp(lhs, rhs) != std::cmp::Ordering::Equal),
            LogicalAnd => ScalarValue::Bool(lhs.is_truthy() && rhs.is_truthy()),
            LogicalOr => ScalarValue::Bool(lhs.is_truthy() || rhs.is_truthy()),
            BitShift => ScalarValue::I64(lhs.as_i64() << (rhs.as_i64() & 63)),
            Add | Subtract | Multiply | Divide | Modulo => {
                let ty = Self::promote(lhs.ty(), rhs.ty());
                if ty.is_float() {
                    let (a, b) = (lhs.as_f64(), rhs.as_f64());
                    let v = match self {
                        Add => a + b,
                        Subtract => a - b,
                        Multiply => a * b,
                        Divide => a / b,
                        Modulo => a % b,
                        _ => unreachable!(),
                    };
                    if ty == ScalarType::F32 {
                        ScalarValue::F32(v as f32)
                    } else {
                        ScalarValue::F64(v)
                    }
                } else {
                    let (a, b) = (lhs.as_i64(), rhs.as_i64());
                    let v = match self {
                        Add => a.wrapping_add(b),
                        Subtract => a.wrapping_sub(b),
                        Multiply => a.wrapping_mul(b),
                        Divide => {
                            if b == 0 {
                                0
                            } else {
                                a.wrapping_div(b)
                            }
                        }
                        Modulo => {
                            if b == 0 {
                                0
                            } else {
                                a.wrapping_rem(b)
                            }
                        }
                        _ => unreachable!(),
                    };
                    if ty == ScalarType::I32 {
                        ScalarValue::I32(v as i32)
                    } else {
                        ScalarValue::I64(v)
                    }
                }
            }
        }
    }

    /// The operator's C / OpenCL spelling (for the kernel renderer).
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Subtract => "-",
            BinOp::Multiply => "*",
            BinOp::Divide => "/",
            BinOp::Modulo => "%",
            BinOp::BitShift => "<<",
            BinOp::LogicalAnd => "&&",
            BinOp::LogicalOr => "||",
            BinOp::Greater => ">",
            BinOp::GreaterEquals => ">=",
            BinOp::Less => "<",
            BinOp::LessEquals => "<=",
            BinOp::Equals => "==",
            BinOp::NotEquals => "!=",
        }
    }
}

/// Compare two scalar values numerically (floats compared as f64; total
/// order with NaN greater than everything, like `f64::total_cmp` collapsed).
fn cmp(lhs: ScalarValue, rhs: ScalarValue) -> std::cmp::Ordering {
    if lhs.ty().is_float() || rhs.ty().is_float() {
        lhs.as_f64().total_cmp(&rhs.as_f64())
    } else {
        lhs.as_i64().cmp(&rhs.as_i64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_rules() {
        use ScalarType::*;
        assert_eq!(BinOp::promote(I32, I32), I32);
        assert_eq!(BinOp::promote(I32, I64), I64);
        assert_eq!(BinOp::promote(Bool, I32), I32);
        assert_eq!(BinOp::promote(F32, F32), F32);
        assert_eq!(BinOp::promote(F32, I32), F64);
        assert_eq!(BinOp::promote(F64, F32), F64);
    }

    #[test]
    fn comparisons_yield_bool() {
        let r = BinOp::Greater.eval(ScalarValue::I32(5), ScalarValue::I32(3));
        assert_eq!(r, ScalarValue::Bool(true));
        assert_eq!(
            BinOp::Greater
                .result_type(ScalarType::F32, ScalarType::I64)
                .unwrap(),
            ScalarType::Bool
        );
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(
            BinOp::Divide.eval(ScalarValue::I64(7), ScalarValue::I64(2)),
            ScalarValue::I64(3)
        );
        assert_eq!(
            BinOp::Modulo.eval(ScalarValue::I32(7), ScalarValue::I32(3)),
            ScalarValue::I32(1)
        );
        // Division by zero is total (yields 0), not a trap.
        assert_eq!(
            BinOp::Divide.eval(ScalarValue::I64(7), ScalarValue::I64(0)),
            ScalarValue::I64(0)
        );
    }

    #[test]
    fn float_arithmetic_promotes() {
        assert_eq!(
            BinOp::Add.eval(ScalarValue::F32(1.5), ScalarValue::F32(2.5)),
            ScalarValue::F32(4.0)
        );
        assert_eq!(
            BinOp::Add.eval(ScalarValue::F32(1.5), ScalarValue::I32(1)),
            ScalarValue::F64(2.5)
        );
    }

    #[test]
    fn bool_coerces_in_arithmetic() {
        // Predication relies on multiplying by a 0/1 predicate outcome.
        assert_eq!(
            BinOp::Multiply.eval(ScalarValue::Bool(true), ScalarValue::I64(42)),
            ScalarValue::I64(42)
        );
        assert_eq!(
            BinOp::Multiply.eval(ScalarValue::Bool(false), ScalarValue::I64(42)),
            ScalarValue::I64(0)
        );
    }

    #[test]
    fn logical_ops_reject_floats() {
        assert!(BinOp::LogicalAnd
            .result_type(ScalarType::F32, ScalarType::Bool)
            .is_err());
        assert_eq!(
            BinOp::LogicalOr.eval(ScalarValue::I32(0), ScalarValue::I32(7)),
            ScalarValue::Bool(true)
        );
    }

    #[test]
    fn shift() {
        assert_eq!(
            BinOp::BitShift.eval(ScalarValue::I32(3), ScalarValue::I32(4)),
            ScalarValue::I64(48)
        );
    }

    #[test]
    fn casts() {
        assert_eq!(
            ScalarValue::F64(3.9).cast(ScalarType::I32),
            ScalarValue::I32(3)
        );
        assert_eq!(
            ScalarValue::I64(0).cast(ScalarType::Bool),
            ScalarValue::Bool(false)
        );
    }
}
