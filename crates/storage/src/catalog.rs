//! The in-memory catalog: tables, columns, dictionaries, metadata.
//!
//! Tables are stored behind [`Arc`], so cloning a [`Catalog`] — and taking
//! a [`CatalogSnapshot`] — is O(#tables), sharing every column buffer.
//! Mutation copies only the touched table (copy-on-write via
//! [`Arc::make_mut`]) and bumps the version counters. Versioning is
//! **per table**: every table remembers the catalog-wide mutation tick at
//! which it last changed ([`Catalog::table_version`]), and the engine
//! layer's prepared-plan caches key on the versions of exactly the tables
//! a program reads ([`Catalog::table_state`]) — so mutating table A never
//! invalidates plans that only touch table B. The catalog-wide counter
//! ([`Catalog::version`]) survives as a coarse "anything changed" tick
//! for snapshot ordering and diagnostics.
//!
//! # Segmented storage & the write path
//!
//! A [`Table`] is an immutable **base** (the `columns` vector) plus a list
//! of sealed, `Arc`-shared append [`Segment`]s. [`Catalog::append_rows`]
//! publishes a batch by sealing it into one new segment and pushing the
//! `Arc` — the base buffers and every earlier segment are shared with all
//! live snapshots untouched, so snapshot publication costs
//! O(batch + #tables), never O(rows resident). Readers see the logical
//! concatenation: [`Table::to_vector`] materializes it lazily through a
//! per-table merged-view cache, and non-append mutations
//! ([`Catalog::update_rows`], [`Catalog::delete_rows`],
//! [`Catalog::table_mut`]) first fold the segments into the base
//! ([`Table::compact`]). Compaction also runs automatically once the
//! pending tail would dominate the base (geometric doubling — amortized
//! O(1) per appended row) or the segment list gets long
//! ([`MAX_TABLE_SEGMENTS`]); it never changes the logical table, so it
//! bumps no version and logs no change.

use std::collections::{HashMap, VecDeque};
use std::ops::Deref;
use std::sync::Arc;

use voodoo_core::{
    Buffer, Column, KeyPath, ScalarType, ScalarValue, Schema, StructuredVector, TableProvider,
};

use crate::partition::{PartitionCache, Partitioning};

/// Per-column statistics maintained on ingest.
///
/// The Voodoo planner uses min/max to size dense (identity-hashed) join and
/// group-by tables "using only min and max" (paper §4, Optimization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Minimum value (integer view; floats floor).
    pub min: i64,
    /// Maximum value (integer view; floats ceil).
    pub max: i64,
}

impl ColumnStats {
    /// Size of the dense value domain `[min, max]`.
    pub fn domain_size(&self) -> usize {
        (self.max - self.min + 1).max(0) as usize
    }
}

/// One named column of a table.
#[derive(Debug, Clone)]
pub struct TableColumn {
    /// Column name (no leading dot).
    pub name: String,
    /// The values (dictionary codes for string columns).
    pub data: Column,
    /// The dictionary, for string columns (codes index into it).
    /// `Arc`-shared: dictionaries can be O(rows) and must not be copied
    /// when a table is cloned for copy-on-write publication.
    pub dict: Option<Arc<Vec<String>>>,
    /// Min/max statistics for numeric (and code) columns.
    pub stats: Option<ColumnStats>,
}

impl TableColumn {
    /// Build from a buffer, computing stats.
    pub fn from_buffer(name: &str, data: Buffer) -> TableColumn {
        let col = Column::from_buffer(data);
        let stats = compute_stats(&col);
        TableColumn {
            name: name.to_string(),
            data: col,
            dict: None,
            stats,
        }
    }

    /// Dictionary-encode a string column (MonetDB-style).
    ///
    /// Codes are assigned in first-occurrence order, stored as `i32`.
    pub fn from_strings(name: &str, values: &[&str]) -> TableColumn {
        let mut dict: Vec<String> = Vec::new();
        let mut lookup: HashMap<&str, i32> = HashMap::new();
        let mut codes: Vec<i32> = Vec::with_capacity(values.len());
        for v in values {
            let code = *lookup.entry(v).or_insert_with(|| {
                dict.push(v.to_string());
                (dict.len() - 1) as i32
            });
            codes.push(code);
        }
        let col = Column::from_buffer(Buffer::I32(codes));
        let stats = compute_stats(&col);
        TableColumn {
            name: name.to_string(),
            data: col,
            dict: Some(Arc::new(dict)),
            stats,
        }
    }

    /// Decode a dictionary code back to its string.
    pub fn decode(&self, code: i32) -> Option<&str> {
        self.dict
            .as_ref()
            .and_then(|d| d.get(code as usize))
            .map(|s| s.as_str())
    }

    /// Look up the code of a string value, if present in the dictionary.
    pub fn encode(&self, value: &str) -> Option<i32> {
        self.dict
            .as_ref()
            .and_then(|d| d.iter().position(|s| s == value))
            .map(|i| i as i32)
    }

    /// The scalar type of the stored values.
    pub fn ty(&self) -> ScalarType {
        self.data.ty()
    }
}

fn compute_stats(col: &Column) -> Option<ColumnStats> {
    let mut it = col.present();
    let first = it.next()?;
    let (mut min, mut max) = (to_i64(first), to_i64(first));
    for v in it {
        let x = to_i64(v);
        min = min.min(x);
        max = max.max(x);
    }
    Some(ColumnStats { min, max })
}

fn to_i64(v: ScalarValue) -> i64 {
    match v {
        ScalarValue::F32(f) => f.floor() as i64,
        ScalarValue::F64(f) => f.floor() as i64,
        other => other.as_i64(),
    }
}

/// A sealed, immutable batch of appended rows: one [`Column`] per table
/// column (dense by construction — every slot populated), stamped with
/// the per-table version whose append produced it.
///
/// Segments are the unit of O(1) snapshot publication: the catalog shares
/// them by `Arc`, and an append segment doubles as the change-log record
/// of the append (the segment *is* the `+1` row delta).
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    version: u64,
    len: usize,
    columns: Vec<Column>,
}

impl Segment {
    /// Number of rows in the segment.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the segment has no rows (never true for sealed segments).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-table version whose append sealed this segment.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The segment's columns, in table column order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The `i64` image of segment-local row `i` (segments are dense, so
    /// every slot is populated).
    pub fn row_image(&self, i: usize) -> Vec<i64> {
        self.columns
            .iter()
            .map(|c| c.get(i).map(|v| v.as_i64()).unwrap_or(0))
            .collect()
    }
}

/// Single-slot cache of the merged (base ⧺ segments) view of a table,
/// keyed on `(table version, row count)` so any mutation — catalog-ticked
/// or standalone — misses. Interior-mutable: readers materialize lazily
/// through `&Table`.
#[derive(Debug, Default)]
struct MergedCache(std::sync::Mutex<Option<((u64, usize), StructuredVector)>>);

impl MergedCache {
    fn get(&self, key: (u64, usize)) -> Option<StructuredVector> {
        let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
        guard
            .as_ref()
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
    }

    fn put(&self, key: (u64, usize), v: StructuredVector) {
        *self.0.lock().unwrap_or_else(|e| e.into_inner()) = Some((key, v));
    }
}

impl Clone for MergedCache {
    fn clone(&self) -> MergedCache {
        // Carrying the entry over is safe (columns are COW) and keeps the
        // merged view warm across the catalog's copy-on-write clones.
        MergedCache(std::sync::Mutex::new(
            self.0.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        ))
    }
}

/// Segment-count ceiling: a table never carries more than this many
/// pending append segments; [`Catalog::append_rows`] folds them into the
/// base once the list gets this long (or earlier, once the pending tail
/// would dominate the base — geometric doubling, amortized O(1)/row).
pub const MAX_TABLE_SEGMENTS: usize = 4096;

/// Don't bother keeping segments on tiny tables: below this many pending
/// rows compaction is cheaper than the bookkeeping.
const MIN_COMPACT_ROWS: usize = 1024;

/// A named table: aligned columns of equal length.
///
/// Storage is an immutable **base** (`columns`) plus `Arc`-shared sealed
/// append [`Segment`]s; `len` counts the logical concatenation. Readers
/// materialize the merged view via [`Table::to_vector`] (cached per
/// version); writers append in O(batch) via [`Table::append_rows`] and
/// fold segments back into the base via [`Table::compact`].
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Logical row count (base rows + all pending segment rows).
    pub len: usize,
    /// Base-segment columns, in definition order. Segment rows are NOT
    /// visible here — read through [`Table::to_vector`] /
    /// [`Table::merged_columns`], or call [`Table::compact`] first.
    pub columns: Vec<TableColumn>,
    /// Declared foreign keys: column name → (target table, target column).
    pub foreign_keys: HashMap<String, (String, String)>,
    /// The catalog mutation tick at which this table last changed
    /// (maintained by [`Catalog`]; 0 for a table not yet inserted).
    pub version: u64,
    /// Sealed append segments, oldest first.
    segments: Vec<Arc<Segment>>,
    /// The highest version whose effects are folded into the base: every
    /// non-append mutation compacts and raises this to its own version,
    /// so all changes past `base_version` are exactly `segments`.
    base_version: u64,
    /// Memoized [`Table::rows_capturable`] (`None` = not yet computed, or
    /// invalidated by an arbitrary in-place hand-out).
    capturable: Option<bool>,
    /// Lazily materialized merged view of base ⧺ segments.
    merged: MergedCache,
}

impl Table {
    /// An empty table with a name.
    pub fn new(name: &str) -> Table {
        Table {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Add a column; first column fixes the row count. Folds any pending
    /// append segments first so the new column aligns with the base.
    pub fn add_column(&mut self, col: TableColumn) -> &mut Self {
        self.compact();
        if self.columns.is_empty() {
            self.len = col.data.len();
        } else {
            assert_eq!(col.data.len(), self.len, "column length must match table");
        }
        self.columns.push(col);
        self.capturable = None;
        self
    }

    /// Declare a foreign key `column → target_table.target_column`.
    pub fn add_foreign_key(&mut self, column: &str, target_table: &str, target_column: &str) {
        self.foreign_keys.insert(
            column.to_string(),
            (target_table.to_string(), target_column.to_string()),
        );
    }

    /// Find a column by name.
    pub fn column(&self, name: &str) -> Option<&TableColumn> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Append rows in bulk, one `Vec<i64>` per row in column order.
    ///
    /// The batch is sealed into one new append [`Segment`] (stamped with
    /// the table's current version) — base column buffers are never
    /// touched, which is what makes catalog-level publication O(batch).
    /// Values are cast to each column's stored type, and column stats
    /// widen to cover the values **as stored** (a wrapped `I32` or
    /// truthiness-collapsed `Bool` widens by its stored value, never the
    /// raw `i64` — stats must not claim a range the data cannot contain).
    /// Panics if a row's arity does not match the table.
    pub fn append_rows(&mut self, rows: &[Vec<i64>]) {
        for row in rows {
            assert_eq!(row.len(), self.columns.len(), "row arity must match table");
        }
        if rows.is_empty() {
            return;
        }
        let mut columns = Vec::with_capacity(self.columns.len());
        for (c, col) in self.columns.iter_mut().enumerate() {
            let ty = col.ty();
            let mut data = Column::from_buffer(Buffer::with_len(ty, 0));
            let (mut min, mut max) = match col.stats {
                Some(s) => (s.min, s.max),
                None => (i64::MAX, i64::MIN),
            };
            for row in rows {
                let stored = ScalarValue::I64(row[c]).cast(ty);
                let x = to_i64(stored);
                min = min.min(x);
                max = max.max(x);
                data.push(Some(stored));
            }
            col.stats = Some(ColumnStats { min, max });
            columns.push(data);
        }
        self.segments.push(Arc::new(Segment {
            version: self.version,
            len: rows.len(),
            columns,
        }));
        self.len += rows.len();
    }

    /// The sealed append segments pending on this table, oldest first.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Rows held in pending append segments (not yet folded into base).
    pub fn pending_rows(&self) -> usize {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// Rows in the base segment (`len` minus pending segment rows).
    pub fn base_len(&self) -> usize {
        self.len - self.pending_rows()
    }

    /// The highest version whose effects are folded into the base. Every
    /// change past it is exactly the pending segment list.
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// Fence posts of the physical layout over the logical row space:
    /// `[0, base_len, …, len]` — one interior cut per segment boundary.
    /// Partition layouts align morsels to these so a morsel never
    /// straddles a segment seam.
    pub fn segment_bounds(&self) -> Vec<usize> {
        let mut bounds = Vec::with_capacity(self.segments.len() + 2);
        bounds.push(0);
        let mut at = self.base_len();
        for seg in &self.segments {
            bounds.push(at);
            at += seg.len;
        }
        bounds.push(self.len);
        bounds.dedup();
        bounds
    }

    /// Fold all pending append segments into the base columns and raise
    /// `base_version` to the current version. Purely physical: the
    /// logical table is unchanged, so callers bump no version and log no
    /// change. Shared base buffers are deep-copied exactly once here
    /// (copy-on-write), so live snapshots keep their view.
    pub fn compact(&mut self) {
        if !self.segments.is_empty() {
            let segments = std::mem::take(&mut self.segments);
            for (c, col) in self.columns.iter_mut().enumerate() {
                for seg in &segments {
                    col.data.extend_from(&seg.columns[c]);
                }
            }
        }
        self.base_version = self.version;
    }

    /// Whether the automatic compaction thresholds are crossed: the
    /// pending tail would dominate the base (geometric doubling) or the
    /// segment list is longer than [`MAX_TABLE_SEGMENTS`].
    pub fn should_compact(&self) -> bool {
        self.segments.len() > MAX_TABLE_SEGMENTS
            || self.pending_rows() >= self.base_len().max(MIN_COMPACT_ROWS)
    }

    /// Whether every row can be captured losslessly as a `Vec<i64>` image:
    /// all columns integer-typed (`Bool`/`I32`/`I64`) and dense (no ε).
    /// Float-typed or sparse tables fall back to coarse rewrite capture.
    /// (Append segments are dense by construction, so the base columns
    /// decide.)
    pub fn rows_capturable(&self) -> bool {
        self.columns.iter().all(|c| {
            matches!(c.ty(), ScalarType::Bool | ScalarType::I32 | ScalarType::I64)
                && c.data.is_dense()
        })
    }

    fn capturable_cached(&mut self) -> bool {
        match self.capturable {
            Some(c) => c,
            None => {
                let c = self.rows_capturable();
                self.capturable = Some(c);
                c
            }
        }
    }

    /// The `i64` image of row `i` (one value per column, in column order),
    /// indexing across the base and any pending segments.
    ///
    /// Only meaningful when [`Table::rows_capturable`] holds — on sparse
    /// tables an ε slot has no faithful `i64` image. Debug builds assert
    /// capturability; release callers must check it themselves and fall
    /// back to coarse [`TableChange::Rewrite`] capture.
    pub fn row_image(&self, i: usize) -> Vec<i64> {
        debug_assert!(
            self.rows_capturable(),
            "row_image on a non-capturable table silently corrupts change capture"
        );
        let base = self.base_len();
        if i < base {
            return self
                .columns
                .iter()
                .map(|c| c.data.get(i).map(|v| v.as_i64()).unwrap_or(0))
                .collect();
        }
        let mut off = i - base;
        for seg in &self.segments {
            if off < seg.len {
                return seg.row_image(off);
            }
            off -= seg.len;
        }
        panic!("row index {i} out of range for table of {} rows", self.len);
    }

    /// The table's flattened Voodoo schema (`.colname` per column).
    pub fn schema(&self) -> Schema {
        Schema::from_fields(
            self.columns
                .iter()
                .map(|c| (KeyPath::new(&c.name), c.ty()))
                .collect(),
        )
    }

    /// Materialize the table as a structured vector: the logical
    /// concatenation of base and pending segments. Unsegmented tables
    /// share their column buffers outright (O(#columns)); segmented ones
    /// merge lazily through a per-table cache keyed on
    /// `(version, row count)`, so repeated reads between appends pay the
    /// concatenation once.
    pub fn to_vector(&self) -> StructuredVector {
        if self.segments.is_empty() {
            let mut v = StructuredVector::with_len(self.len);
            for c in &self.columns {
                v.insert(KeyPath::new(&c.name), c.data.clone());
            }
            return v;
        }
        let key = (self.version, self.len);
        if let Some(v) = self.merged.get(key) {
            return v;
        }
        let mut v = StructuredVector::with_len(self.len);
        for (c, col) in self.columns.iter().enumerate() {
            let mut data = col.data.clone();
            for seg in &self.segments {
                data.extend_from(&seg.columns[c]);
            }
            v.insert(KeyPath::new(&col.name), data);
        }
        self.merged.put(key, v.clone());
        v
    }

    /// The merged (base ⧺ segments) data of one column, sharing the base
    /// buffer outright when no segments are pending.
    pub fn merged_column(&self, name: &str) -> Option<Column> {
        let col = self.column(name)?;
        if self.segments.is_empty() {
            return Some(col.data.clone());
        }
        self.to_vector().column(&KeyPath::new(&col.name)).cloned()
    }

    /// All columns with their merged (base ⧺ segments) data — what
    /// serialization and whole-table staging must read instead of the
    /// base-only `columns` field.
    pub fn merged_columns(&self) -> Vec<TableColumn> {
        if self.segments.is_empty() {
            return self.columns.clone();
        }
        let v = self.to_vector();
        self.columns
            .iter()
            .map(|c| TableColumn {
                name: c.name.clone(),
                data: v
                    .column(&KeyPath::new(&c.name))
                    .cloned()
                    .expect("merged view covers every column"),
                dict: c.dict.clone(),
                stats: c.stats,
            })
            .collect()
    }
}

/// A batch of captured row changes for one table: full row images (one
/// `i64` per column) with signed multiplicities — `+1` for an inserted
/// row, `-1` for a deleted one; an update is a `-1`/`+1` pair. This is the
/// Z-set (DBSP) representation incremental view maintenance consumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowDelta {
    /// Row images, one `Vec<i64>` per changed row, in table column order.
    pub rows: Vec<Vec<i64>>,
    /// Signed multiplicity per row, aligned with `rows`.
    pub weights: Vec<i64>,
}

impl RowDelta {
    /// Number of captured (row, weight) pairs.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no changes were captured.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Record one row image with a signed multiplicity.
    pub fn push(&mut self, row: Vec<i64>, weight: i64) {
        self.rows.push(row);
        self.weights.push(weight);
    }

    /// Append another delta after this one (concatenation, not
    /// consolidation — Z-set addition tolerates duplicates).
    pub fn merge(&mut self, other: &RowDelta) {
        self.rows.extend(other.rows.iter().cloned());
        self.weights.extend(other.weights.iter().copied());
    }
}

/// What the change log knows about one table mutation.
#[derive(Debug, Clone)]
pub enum TableChange {
    /// Row-level capture: the exact Z-set of changed rows.
    Delta(RowDelta),
    /// An append captured as its sealed segment: the segment *is* the
    /// `+1`-weighted delta, shared with the table instead of copied out —
    /// logging an append is O(1), not O(batch).
    Append(Arc<Segment>),
    /// Coarse capture: the table changed in a way row images cannot
    /// express (replacement, in-place hand-out, float/sparse columns).
    /// Consumers must fall back to a full recompute.
    Rewrite,
}

/// One change-log entry: which table changed, the per-table version the
/// mutation produced, and the captured change.
#[derive(Debug, Clone)]
pub struct ChangeEntry {
    /// The mutated table.
    pub table: String,
    /// The table version this mutation produced.
    pub version: u64,
    /// The captured change.
    pub change: TableChange,
}

/// Bounded depth of the change log; older entries are dropped and the
/// floor rises, forcing readers that fell too far behind to full-recompute
/// — unless every change past their version is a still-resident append
/// segment, which [`Catalog::changes_since`] serves directly.
pub const MAX_CHANGE_LOG: usize = 1024;

/// The catalog: the persistent namespace `Load`/`Persist` operate on.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    version: u64,
    /// Cached morsel layouts, shared across clones/snapshots (entries are
    /// keyed by per-table version, so sharing is always safe).
    partitions: PartitionCache,
    /// Captured mutations, oldest first (entries are `Arc`-shared across
    /// clones/snapshots; the deque itself is tiny).
    changes: VecDeque<Arc<ChangeEntry>>,
    /// Versions at or below this may have had their entries dropped.
    change_floor: u64,
}

impl Catalog {
    /// A fresh, empty in-memory catalog.
    pub fn in_memory() -> Catalog {
        Catalog::default()
    }

    /// A monotonic mutation counter: bumped whenever *any* table is
    /// inserted, replaced, or handed out mutably. Plan invalidation keys
    /// on the finer-grained [`Catalog::table_state`]; this coarse tick
    /// orders snapshots and feeds diagnostics.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The mutation tick at which `name` last changed, or `None` for an
    /// unknown table. Monotonic per catalog lineage: any insert, replace
    /// or mutable hand-out of the table bumps it.
    pub fn table_version(&self, name: &str) -> Option<u64> {
        self.tables.get(name).map(|t| t.version)
    }

    /// A collision-free fingerprint of the current state of the named
    /// tables: `"name@version"` per table (`"name@-"` for an absent one),
    /// `;`-joined in input order. Prepared-plan caches key on the
    /// fingerprint of exactly the tables a program loads or persists, so
    /// unrelated mutations leave cached plans hot.
    pub fn table_state<'a>(&self, tables: impl IntoIterator<Item = &'a str>) -> String {
        let mut s = String::new();
        for name in tables {
            if !s.is_empty() {
                s.push(';');
            }
            s.push_str(name);
            s.push('@');
            match self.table_version(name) {
                Some(v) => s.push_str(&v.to_string()),
                None => s.push('-'),
            }
        }
        s
    }

    /// The cached morsel layout slicing table `name` into at most `parts`
    /// extents, or `None` for an unknown table. Layouts are computed once
    /// per `(table, table-version, parts)` and shared across every clone
    /// and snapshot of this catalog; mutating the table bumps its version
    /// and thereby invalidates exactly its own layouts. Segmented tables
    /// get layouts whose morsels additionally respect segment seams.
    pub fn table_partitioning(&self, name: &str, parts: usize) -> Option<Arc<Partitioning>> {
        let t = self.tables.get(name)?;
        if t.segments.is_empty() {
            Some(self.partitions.get(name, t.version, t.len, parts))
        } else {
            Some(
                self.partitions
                    .get_with_cuts(name, t.version, t.len, parts, &t.segment_bounds()),
            )
        }
    }

    /// An immutable, cheaply clonable snapshot of this catalog. Column
    /// buffers are shared (tables sit behind [`Arc`]), so the snapshot is
    /// O(#tables) regardless of data volume.
    pub fn snapshot(&self) -> CatalogSnapshot {
        CatalogSnapshot(Arc::new(self.clone()))
    }

    /// Insert (or replace) a table. Captured as a [`TableChange::Rewrite`]
    /// in the change log: replacement has no row-level delta.
    pub fn insert_table(&mut self, mut table: Table) {
        self.version += 1;
        table.version = self.version;
        table.base_version = self.version;
        let version = self.version;
        self.log_change(&table.name, version, TableChange::Rewrite);
        self.tables.insert(table.name.clone(), Arc::new(table));
    }

    /// Insert a table with a pinned per-table version instead of a fresh
    /// mutation tick. This exists for *staging scratch inputs* (e.g. delta
    /// batches fed to incremental refresh): pinning the version to a
    /// content-derived value (typically the row count) keeps the
    /// `table_state` fingerprint — and therefore prepared-plan cache keys —
    /// stable across refreshes that stage same-shaped inputs. Not captured
    /// in the change log; do not use for tables readers maintain views over.
    pub fn insert_table_pinned(&mut self, mut table: Table, version: u64) {
        self.version = self.version.max(version);
        table.version = version;
        table.base_version = version;
        self.tables.insert(table.name.clone(), Arc::new(table));
    }

    /// Fold the pending append segments of table `name` into its base.
    /// Purely physical — the logical table is unchanged, so no version is
    /// bumped and no change is logged; live snapshots keep sharing the
    /// pre-compaction buffers. Returns `false` for an unknown table.
    pub fn compact_table(&mut self, name: &str) -> bool {
        let Some(entry) = self.tables.get_mut(name) else {
            return false;
        };
        Arc::make_mut(entry).compact();
        true
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(|t| t.as_ref())
    }

    /// Mutable table lookup (conservatively counts as a mutation).
    ///
    /// Copy-on-write: if the table is shared with snapshots, it is cloned
    /// first, so existing snapshots keep their view. Captured as a
    /// [`TableChange::Rewrite`]: an arbitrary in-place edit has no
    /// row-level delta. Use [`Catalog::append_rows`] /
    /// [`Catalog::update_rows`] / [`Catalog::delete_rows`] for mutations
    /// incremental view maintenance can follow.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.version += 1;
        let version = self.version;
        if self.tables.contains_key(name) {
            self.log_change(name, version, TableChange::Rewrite);
        }
        self.tables.get_mut(name).map(|t| {
            let t = Arc::make_mut(t);
            t.version = version;
            // Hand out a flat table: arbitrary edits index the base, and
            // they may change capturability in ways appends cannot.
            t.compact();
            t.capturable = None;
            t
        })
    }

    /// Append rows to a table. The batch is sealed into one `Arc`-shared
    /// [`Segment`] and the very same segment is logged as the change
    /// ([`TableChange::Append`]) — publication and capture both cost
    /// O(batch), independent of the rows already resident. Non-capturable
    /// tables (float/sparse columns) still append in O(batch) but log a
    /// coarse [`TableChange::Rewrite`]. Folds segments into the base when
    /// the compaction thresholds trip. Returns `false` for an unknown
    /// table; panics if a row's arity does not match.
    pub fn append_rows(&mut self, name: &str, rows: &[Vec<i64>]) -> bool {
        let Some(entry) = self.tables.get_mut(name) else {
            return false;
        };
        self.version += 1;
        let version = self.version;
        let t = Arc::make_mut(entry);
        t.version = version;
        let capturable = t.capturable_cached();
        t.append_rows(rows);
        let change = if rows.is_empty() {
            TableChange::Delta(RowDelta::default())
        } else if capturable {
            TableChange::Append(Arc::clone(
                t.segments.last().expect("append sealed a segment"),
            ))
        } else {
            // Lossless capture is off for this table: raise the base
            // watermark so the segment fast path can never serve it.
            t.base_version = version;
            TableChange::Rewrite
        };
        if t.should_compact() {
            t.compact();
        }
        self.log_change(name, version, change);
        true
    }

    /// Overwrite rows in place: `(row index, new image)` pairs, images in
    /// column order. Captured as a `-old`/`+new` [`RowDelta`] pair per row
    /// (or a [`TableChange::Rewrite`] for non-capturable tables). Stats
    /// widen to cover the new values. Out-of-range indices are ignored;
    /// returns `false` for an unknown table.
    pub fn update_rows(&mut self, name: &str, updates: &[(usize, Vec<i64>)]) -> bool {
        let Some(entry) = self.tables.get_mut(name) else {
            return false;
        };
        self.version += 1;
        let version = self.version;
        let t = Arc::make_mut(entry);
        t.version = version;
        // In-place writes index the base: fold pending segments first
        // (this also raises base_version past every live reader).
        t.compact();
        let capturable = t.capturable_cached();
        let mut delta = RowDelta::default();
        for (i, row) in updates {
            let i = *i;
            if i >= t.len {
                continue;
            }
            assert_eq!(row.len(), t.columns.len(), "row arity must match table");
            if capturable {
                delta.push(t.row_image(i), -1);
            }
            for (c, col) in t.columns.iter_mut().enumerate() {
                let stored = ScalarValue::I64(row[c]).cast(col.ty());
                let x = to_i64(stored);
                col.data.set(i, stored);
                if let Some(s) = col.stats.as_mut() {
                    s.min = s.min.min(x);
                    s.max = s.max.max(x);
                } else {
                    col.stats = Some(ColumnStats { min: x, max: x });
                }
            }
            if capturable {
                delta.push(t.row_image(i), 1);
            }
        }
        let change = if capturable {
            TableChange::Delta(delta)
        } else {
            TableChange::Rewrite
        };
        self.log_change(name, version, change);
        true
    }

    /// Delete rows by index. Captured as a `-1`-weighted [`RowDelta`] of
    /// the removed images (or a [`TableChange::Rewrite`] for
    /// non-capturable tables). Duplicate and out-of-range indices are
    /// ignored; stats are recomputed. Returns `false` for an unknown table.
    pub fn delete_rows(&mut self, name: &str, idxs: &[usize]) -> bool {
        let Some(entry) = self.tables.get_mut(name) else {
            return false;
        };
        self.version += 1;
        let version = self.version;
        let t = Arc::make_mut(entry);
        t.version = version;
        // Deletion rebuilds the base: fold pending segments first.
        t.compact();
        let mut drop = vec![false; t.len];
        for &i in idxs {
            if i < t.len {
                drop[i] = true;
            }
        }
        let capturable = t.capturable_cached();
        let mut delta = RowDelta::default();
        if capturable {
            for (i, &d) in drop.iter().enumerate() {
                if d {
                    delta.push(t.row_image(i), -1);
                }
            }
        }
        for col in t.columns.iter_mut() {
            let mut kept = Column::from_buffer(Buffer::with_len(col.data.ty(), 0));
            for (i, &d) in drop.iter().enumerate() {
                if !d {
                    kept.push(col.data.get(i));
                }
            }
            col.data = kept;
            col.stats = compute_stats(&col.data);
        }
        t.len -= drop.iter().filter(|&&d| d).count();
        // Dropping sparse rows can make a table capturable again; let the
        // next mutation recompute instead of carrying a stale memo.
        t.capturable = None;
        let change = if capturable {
            TableChange::Delta(delta)
        } else {
            TableChange::Rewrite
        };
        self.log_change(name, version, change);
        true
    }

    /// The exact row-level changes of table `name` since per-table version
    /// `since`, merged oldest-first. `None` means row-level capture is not
    /// available — a mutation in the range was a [`TableChange::Rewrite`],
    /// or the log has been trimmed to (or past) `since` — and the reader
    /// must fall back to a full recompute. An up-to-date table yields an
    /// empty delta.
    ///
    /// Appends are served from the table's still-resident segments when
    /// possible (`since` at or past the base watermark of a losslessly
    /// capturable table), so pure-ingest readers get exact deltas even
    /// beyond the bounded [`MAX_CHANGE_LOG`] window.
    pub fn changes_since(&self, name: &str, since: u64) -> Option<RowDelta> {
        let t = self.tables.get(name)?;
        let mut delta = RowDelta::default();
        if t.version <= since {
            return Some(delta);
        }
        // Segment fast path: every mutation past `since` is a sealed
        // append segment still pending on the table (any other mutation
        // would have raised `base_version` past `since`). The segments
        // ARE the delta — no log needed, no floor to fall behind.
        if since >= t.base_version && t.capturable == Some(true) {
            for seg in &t.segments {
                if seg.version > since {
                    for i in 0..seg.len {
                        delta.push(seg.row_image(i), 1);
                    }
                }
            }
            return Some(delta);
        }
        if since <= self.change_floor {
            return None;
        }
        for e in &self.changes {
            if e.table == name && e.version > since {
                match &e.change {
                    TableChange::Delta(d) => delta.merge(d),
                    TableChange::Append(seg) => {
                        for i in 0..seg.len {
                            delta.push(seg.row_image(i), 1);
                        }
                    }
                    TableChange::Rewrite => return None,
                }
            }
        }
        Some(delta)
    }

    /// Versions at or below this floor may have had their change-log
    /// entries dropped; [`Catalog::changes_since`] refuses them (the floor
    /// itself included — no off-by-one ever yields an approximate delta)
    /// unless the segment fast path can serve the range exactly.
    pub fn change_floor(&self) -> u64 {
        self.change_floor
    }

    fn log_change(&mut self, table: &str, version: u64, change: TableChange) {
        self.changes.push_back(Arc::new(ChangeEntry {
            table: table.to_string(),
            version,
            change,
        }));
        while self.changes.len() > MAX_CHANGE_LOG {
            if let Some(dropped) = self.changes.pop_front() {
                self.change_floor = self.change_floor.max(dropped.version);
            }
        }
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Create a single-column table named `name` with column `val`.
    pub fn put_i64_column(&mut self, name: &str, values: &[i64]) {
        let mut t = Table::new(name);
        t.add_column(TableColumn::from_buffer(
            "val",
            Buffer::I64(values.to_vec()),
        ));
        self.insert_table(t);
    }

    /// Create a single-column `f32` table (column `val`).
    pub fn put_f32_column(&mut self, name: &str, values: &[f32]) {
        let mut t = Table::new(name);
        t.add_column(TableColumn::from_buffer(
            "val",
            Buffer::F32(values.to_vec()),
        ));
        self.insert_table(t);
    }

    /// Create a single-column `i32` table (column `val`).
    pub fn put_i32_column(&mut self, name: &str, values: &[i32]) {
        let mut t = Table::new(name);
        t.add_column(TableColumn::from_buffer(
            "val",
            Buffer::I32(values.to_vec()),
        ));
        self.insert_table(t);
    }

    /// Materialize a table as a structured vector (the `Load` semantics).
    pub fn load_vector(&self, name: &str) -> Option<StructuredVector> {
        self.table(name).map(|t| t.to_vector())
    }

    /// Store a structured vector as a table (the `Persist` semantics).
    pub fn persist_vector(&mut self, name: &str, v: &StructuredVector) {
        let mut t = Table::new(name);
        t.len = v.len();
        for (kp, col) in v.fields() {
            t.columns.push(TableColumn {
                name: kp.as_ident(),
                data: col.clone(),
                dict: None,
                stats: compute_stats(col),
            });
        }
        self.insert_table(t);
    }

    /// Min/max stats of a column, if known.
    pub fn column_stats(&self, table: &str, column: &str) -> Option<ColumnStats> {
        self.table(table)?.column(column)?.stats
    }
}

impl TableProvider for Catalog {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.table(name).map(|t| t.schema())
    }

    fn table_len(&self, name: &str) -> Option<usize> {
        self.table(name).map(|t| t.len)
    }
}

/// An immutable, reference-counted view of a [`Catalog`] at a fixed
/// version.
///
/// Snapshots are what concurrent readers execute against: a statement
/// grabs one at start and holds no lock for the rest of its run. Cloning
/// a snapshot is a reference-count bump; the underlying column buffers
/// are shared with the live catalog until a writer copies-on-write the
/// touched table.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot(Arc<Catalog>);

impl CatalogSnapshot {
    /// Snapshot an owned catalog (no copy beyond the table map).
    pub fn new(catalog: Catalog) -> CatalogSnapshot {
        CatalogSnapshot(Arc::new(catalog))
    }

    /// The catalog version this snapshot pinned.
    pub fn version(&self) -> u64 {
        self.0.version()
    }
}

impl Deref for CatalogSnapshot {
    type Target = Catalog;

    fn deref(&self) -> &Catalog {
        &self.0
    }
}

impl From<Catalog> for CatalogSnapshot {
    fn from(catalog: Catalog) -> CatalogSnapshot {
        CatalogSnapshot::new(catalog)
    }
}

impl AsRef<Catalog> for CatalogSnapshot {
    fn as_ref(&self) -> &Catalog {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_roundtrip() {
        let col = TableColumn::from_strings("flag", &["A", "N", "A", "R", "N"]);
        assert_eq!(col.dict.as_ref().unwrap().len(), 3);
        assert_eq!(col.decode(0), Some("A"));
        assert_eq!(col.encode("R"), Some(2));
        assert_eq!(col.encode("X"), None);
        // Codes follow first occurrence: A=0, N=1, R=2.
        assert_eq!(col.data.buffer().as_i32().unwrap(), &[0, 1, 0, 2, 1]);
    }

    #[test]
    fn stats_computed() {
        let col = TableColumn::from_buffer("x", Buffer::I64(vec![5, -3, 9]));
        let s = col.stats.unwrap();
        assert_eq!((s.min, s.max), (-3, 9));
        assert_eq!(s.domain_size(), 13);
    }

    #[test]
    fn table_schema_and_vector() {
        let mut t = Table::new("line");
        t.add_column(TableColumn::from_buffer("qty", Buffer::I64(vec![1, 2])));
        t.add_column(TableColumn::from_buffer(
            "price",
            Buffer::F64(vec![1.5, 2.5]),
        ));
        assert_eq!(t.len, 2);
        let v = t.to_vector();
        assert_eq!(v.len(), 2);
        assert_eq!(
            v.value_at(1, &KeyPath::new(".price")),
            Some(ScalarValue::F64(2.5))
        );
    }

    #[test]
    #[should_panic(expected = "column length must match")]
    fn misaligned_column_panics() {
        let mut t = Table::new("t");
        t.add_column(TableColumn::from_buffer("a", Buffer::I64(vec![1, 2])));
        t.add_column(TableColumn::from_buffer("b", Buffer::I64(vec![1])));
    }

    #[test]
    fn catalog_provider_impl() {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("input", &[1, 2, 3]);
        assert_eq!(cat.table_len("input"), Some(3));
        assert_eq!(
            cat.table_schema("input")
                .unwrap()
                .field_type(&KeyPath::new(".val")),
            Some(ScalarType::I64)
        );
        assert_eq!(cat.table_len("nope"), None);
    }

    #[test]
    fn persist_roundtrip() {
        let mut cat = Catalog::in_memory();
        let mut v = StructuredVector::with_len(2);
        v.insert(".sum", Column::from_buffer(Buffer::I64(vec![10, 20])));
        cat.persist_vector("result", &v);
        let back = cat.load_vector("result").unwrap();
        assert_eq!(
            back.value_at(0, &KeyPath::new(".sum")),
            Some(ScalarValue::I64(10))
        );
    }

    #[test]
    fn snapshots_share_buffers_and_survive_mutation() {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("t", &[1, 2, 3]);
        let snap = cat.snapshot();
        assert_eq!(snap.version(), cat.version());
        // Mutating the live catalog copies-on-write; the snapshot keeps
        // its view and its version.
        cat.put_i64_column("t", &[9, 9]);
        assert_eq!(snap.table("t").unwrap().len, 3);
        assert_eq!(cat.table("t").unwrap().len, 2);
        assert!(cat.version() > snap.version());
        // table_mut on a shared table must not bleed into the snapshot.
        let mut cat2 = Catalog::in_memory();
        cat2.put_i64_column("u", &[1]);
        let snap2 = cat2.snapshot();
        cat2.table_mut("u")
            .unwrap()
            .add_foreign_key("val", "t", "val");
        assert!(snap2.table("u").unwrap().foreign_keys.is_empty());
        assert_eq!(cat2.table("u").unwrap().foreign_keys.len(), 1);
    }

    #[test]
    fn table_versions_move_independently() {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("a", &[1, 2]);
        cat.put_i64_column("b", &[3, 4]);
        let (va, vb) = (
            cat.table_version("a").unwrap(),
            cat.table_version("b").unwrap(),
        );
        assert_ne!(va, vb);
        let state_b = cat.table_state(["b"]);
        // Mutating `a` leaves `b`'s version — and fingerprint — untouched.
        cat.put_i64_column("a", &[9]);
        assert!(cat.table_version("a").unwrap() > va);
        assert_eq!(cat.table_version("b"), Some(vb));
        assert_eq!(cat.table_state(["b"]), state_b);
        assert_ne!(cat.table_state(["a", "b"]), state_b);
        // table_mut conservatively bumps the touched table only.
        cat.table_mut("b").unwrap();
        assert!(cat.table_version("b").unwrap() > vb);
        // Absent tables fingerprint distinctly from any present version.
        assert_eq!(cat.table_state(["nope"]), "nope@-");
    }

    #[test]
    fn table_partitioning_is_cached_per_version() {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("t", &(0..10_000).collect::<Vec<_>>());
        let a = cat.table_partitioning("t", 4).unwrap();
        let b = cat.table_partitioning("t", 4).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "layout computed once per version");
        assert_eq!(a.total_len(), 10_000);
        // Snapshots share the cache (same Arc-ed layout)…
        let snap = cat.snapshot();
        assert!(Arc::ptr_eq(&snap.table_partitioning("t", 4).unwrap(), &a));
        // …and mutating the table invalidates its layouts.
        cat.put_i64_column("t", &(0..5_000).collect::<Vec<_>>());
        let c = cat.table_partitioning("t", 4).unwrap();
        assert_eq!(c.total_len(), 5_000);
        assert!(!Arc::ptr_eq(&c, &a));
        assert!(cat.table_partitioning("missing", 4).is_none());
    }

    #[test]
    fn append_rows_seals_segments_base_untouched() {
        let mut t = Table::new("t");
        t.add_column(TableColumn::from_buffer("a", Buffer::I64(vec![1, 2])));
        t.add_column(TableColumn::from_buffer("b", Buffer::I32(vec![10, 20])));
        t.append_rows(&[vec![3, 30], vec![-4, 40]]);
        assert_eq!(t.len, 4);
        // The base buffers are untouched; the batch lives in one sealed
        // segment, and readers see the logical concatenation.
        assert_eq!(
            t.column("a").unwrap().data.buffer().as_i64().unwrap(),
            &[1, 2]
        );
        assert_eq!(
            (t.base_len(), t.pending_rows(), t.segments().len()),
            (2, 2, 1)
        );
        let v = t.to_vector();
        assert_eq!(
            v.column(&KeyPath::new("a")).unwrap().buffer().as_i64(),
            Some(&[1i64, 2, 3, -4][..])
        );
        assert_eq!(
            v.column(&KeyPath::new("b")).unwrap().buffer().as_i32(),
            Some(&[10i32, 20, 30, 40][..])
        );
        let s = t.column("a").unwrap().stats.unwrap();
        assert_eq!((s.min, s.max), (-4, 3));
        assert!(t.rows_capturable());
        assert_eq!(t.row_image(3), vec![-4, 40]);
        assert_eq!(t.segment_bounds(), vec![0, 2, 4]);
        // Compaction folds everything into the base, changing nothing
        // logically.
        t.compact();
        assert_eq!((t.len, t.pending_rows()), (4, 0));
        assert_eq!(
            t.column("a").unwrap().data.buffer().as_i64().unwrap(),
            &[1, 2, 3, -4]
        );
        assert_eq!(t.row_image(3), vec![-4, 40]);
        assert_eq!(t.to_vector(), v);
    }

    #[test]
    fn append_publication_shares_all_prior_storage() {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("t", &(0..10_000).collect::<Vec<_>>());
        assert!(cat.append_rows("t", &[vec![7], vec![8]]));
        let snap = cat.snapshot();
        // Another append: the new catalog's table shares the base buffer
        // AND the first segment with the snapshot — only the new segment
        // is fresh storage. This is the O(batch) publication invariant.
        assert!(cat.append_rows("t", &[vec![9]]));
        let (before, after) = (snap.table("t").unwrap(), cat.table("t").unwrap());
        assert!(after.columns[0]
            .data
            .shares_storage_with(&before.columns[0].data));
        assert!(Arc::ptr_eq(&after.segments()[0], &before.segments()[0]));
        assert_eq!(after.segments().len(), 2);
        // The snapshot still reads its own (shorter) view.
        assert_eq!(before.len, 10_002);
        assert_eq!(after.len, 10_003);
    }

    #[test]
    fn stats_widen_from_stored_values_not_raw() {
        // Out-of-range for i32: wraps on store; stats must track the
        // wrapped value, not claim a max the column cannot contain.
        let raw = i32::MAX as i64 + 2;
        let mut t2 = Table::new("t2");
        t2.add_column(TableColumn::from_buffer("v", Buffer::I32(vec![1, 2])));
        t2.append_rows(&[vec![raw]]);
        let stored = raw as i32 as i64;
        let s = t2.column("v").unwrap().stats.unwrap();
        assert_eq!((s.min, s.max), (stored.min(1), stored.max(2)));
        let merged = t2.to_vector();
        let col = merged.column(&KeyPath::new("v")).unwrap();
        assert_eq!(col.buffer().as_i32().unwrap()[2] as i64, stored);
        // Bool columns collapse to truthiness: stats stay within {0, 1}.
        let mut tb = Table::new("tb");
        tb.add_column(TableColumn::from_buffer("b", Buffer::Bool(vec![false])));
        tb.append_rows(&[vec![7]]);
        let sb = tb.column("b").unwrap().stats.unwrap();
        assert_eq!((sb.min, sb.max), (0, 1));
    }

    #[test]
    fn segment_fast_path_serves_appends_beyond_log() {
        let mut cat = Catalog::in_memory();
        let mut t = Table::new("t");
        t.add_column(TableColumn::from_buffer(
            "v",
            Buffer::I64((0..8192).collect()),
        ));
        cat.insert_table(t);
        let since = cat.table_version("t").unwrap();
        // Push enough appends to trim the log far past `since`; the base
        // is large enough that no compaction folds the segments.
        for i in 0..(MAX_CHANGE_LOG as i64 + 16) {
            cat.append_rows("t", &[vec![i]]);
        }
        assert!(cat.change_floor() > since);
        let d = cat.changes_since("t", since).expect("segments serve this");
        assert_eq!(d.len(), MAX_CHANGE_LOG + 16);
        assert_eq!(d.rows[0], vec![0]);
        assert!(d.weights.iter().all(|&w| w == 1));
        // After compaction the resident segments are gone and the trimmed
        // log can no longer answer: full recompute.
        assert!(cat.compact_table("t"));
        assert_eq!(cat.changes_since("t", since), None);
    }

    #[test]
    fn automatic_compaction_bounds_pending_tail() {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("t", &[0]);
        for i in 0..4096i64 {
            cat.append_rows("t", &[vec![i]]);
        }
        let t = cat.table("t").unwrap();
        assert_eq!(t.len, 4097);
        // Geometric policy: pending never exceeds max(base, floor).
        assert!(t.pending_rows() < t.base_len().max(1024) + 1);
        assert!(t.segments().len() <= MAX_TABLE_SEGMENTS);
        // The merged view is the full history regardless of folding.
        let v = t.to_vector();
        assert_eq!(v.len(), 4097);
        assert_eq!(
            v.column(&KeyPath::new("val"))
                .unwrap()
                .buffer()
                .as_i64()
                .unwrap()[4096],
            4095
        );
    }

    #[test]
    fn change_log_captures_row_deltas() {
        let mut cat = Catalog::in_memory();
        let mut t = Table::new("t");
        t.add_column(TableColumn::from_buffer("k", Buffer::I64(vec![0, 1])));
        t.add_column(TableColumn::from_buffer("v", Buffer::I64(vec![5, 6])));
        cat.insert_table(t);
        let v0 = cat.table_version("t").unwrap();
        // Nothing changed yet: empty delta.
        assert_eq!(cat.changes_since("t", v0), Some(RowDelta::default()));
        // Append, update, delete — all row-captured and merged in order.
        assert!(cat.append_rows("t", &[vec![2, 7]]));
        assert!(cat.update_rows("t", &[(0, vec![0, 50])]));
        assert!(cat.delete_rows("t", &[1]));
        let d = cat.changes_since("t", v0).unwrap();
        assert_eq!(
            d.rows,
            vec![
                vec![2, 7],  // appended
                vec![0, 5],  // update: old image retracted
                vec![0, 50], // update: new image inserted
                vec![1, 6],  // deleted
            ]
        );
        assert_eq!(d.weights, vec![1, -1, 1, -1]);
        assert_eq!(cat.table("t").unwrap().len, 2);
        // A rewrite (table_mut) in range forces full recompute.
        cat.table_mut("t").unwrap();
        assert_eq!(cat.changes_since("t", v0), None);
        // …but reads from after the rewrite are row-level again.
        let v1 = cat.table_version("t").unwrap();
        assert!(cat.append_rows("t", &[vec![9, 9]]));
        assert_eq!(cat.changes_since("t", v1).unwrap().rows, vec![vec![9, 9]]);
        // Unknown tables: None from changes_since, false from mutators.
        assert_eq!(cat.changes_since("nope", 0), None);
        assert!(!cat.append_rows("nope", &[]));
    }

    #[test]
    fn change_log_trims_to_floor() {
        let mut cat = Catalog::in_memory();
        let mut t = Table::new("t");
        t.add_column(TableColumn::from_buffer("v", Buffer::I64(vec![0])));
        cat.insert_table(t);
        let v0 = cat.table_version("t").unwrap();
        for i in 0..(MAX_CHANGE_LOG as i64 + 8) {
            cat.append_rows("t", &[vec![i]]);
        }
        assert!(cat.change_floor() > 0);
        // The earliest reader fell behind the floor: row capture refused.
        assert_eq!(cat.changes_since("t", v0), None);
        // A reader within the window still gets exact deltas.
        let recent = cat.table_version("t").unwrap() - 4;
        assert_eq!(cat.changes_since("t", recent).unwrap().len(), 4);
    }

    #[test]
    fn float_tables_capture_as_rewrite() {
        let mut cat = Catalog::in_memory();
        cat.put_f32_column("f", &[1.5]);
        let v0 = cat.table_version("f").unwrap();
        assert!(!cat.table("f").unwrap().rows_capturable());
        assert!(cat.append_rows("f", &[vec![2]]));
        assert_eq!(cat.changes_since("f", v0), None);
        assert_eq!(cat.table("f").unwrap().len, 2);
    }

    #[test]
    fn pinned_insert_keeps_fingerprint_stable() {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("base", &[1, 2, 3]);
        let mut d = Table::new("delta");
        d.add_column(TableColumn::from_buffer("v", Buffer::I64(vec![7, 8])));
        cat.insert_table_pinned(d, 2);
        assert_eq!(cat.table_version("delta"), Some(2));
        let fp = cat.table_state(["delta"]);
        // Re-staging a same-shape delta reproduces the fingerprint.
        let mut d2 = Table::new("delta");
        d2.add_column(TableColumn::from_buffer("v", Buffer::I64(vec![9, 1])));
        cat.insert_table_pinned(d2, 2);
        assert_eq!(cat.table_state(["delta"]), fp);
    }

    #[test]
    fn foreign_keys_recorded() {
        let mut t = Table::new("lineitem");
        t.add_column(TableColumn::from_buffer("l_orderkey", Buffer::I64(vec![1])));
        t.add_foreign_key("l_orderkey", "orders", "o_orderkey");
        assert_eq!(
            t.foreign_keys.get("l_orderkey"),
            Some(&("orders".to_string(), "o_orderkey".to_string()))
        );
    }
}
