//! Tunability demo: the three selection strategies of Figure 15 (and the
//! predication flag of Figure 1), on the CPU and the simulated GPU.
//!
//! The same scan-select-aggregate query is expressed three ways — each a
//! one-operator (or one-flag) change — and behaves very differently per
//! device, reproducing the paper's §5.3 "Selective Aggregation" study.
//!
//! ```sh
//! cargo run --release --example predication
//! ```

use voodoo::compile::exec::ExecOptions;
use voodoo::compile::{Compiler, Executor};
use voodoo::gpusim::GpuSimulator;
use voodoo_bench::micro;

fn main() {
    let n = 1 << 18;
    let cat = micro::selection_catalog(n, 42);
    println!("selection over {n} values; times in microseconds\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14}   (device)",
        "sel%", "branching", "branch-free", "vectorized"
    );
    for sel in [1.0, 10.0, 50.0, 90.0] {
        let c = micro::cutoff(sel / 100.0);
        let branching = micro::prog_select_sum_branching(c);
        let branch_free = micro::prog_select_sum_predicated(c);
        let vectorized = micro::prog_select_sum_vectorized(c, 4096);

        // CPU, measured.
        let mut cpu = Vec::new();
        for (p, pred) in [(&branching, false), (&branch_free, false), (&vectorized, true)] {
            let cp = Compiler::new(&cat).compile(p).expect("compile");
            let exec = Executor::new(ExecOptions {
                predicated_select: pred,
                ..Default::default()
            });
            let t = std::time::Instant::now();
            let (out, _) = exec.run(&cp, &cat).expect("run");
            std::hint::black_box(out);
            cpu.push(t.elapsed().as_secs_f64() * 1e6);
        }
        println!("{sel:>6} {:>14.1} {:>14.1} {:>14.1}   (CPU measured)", cpu[0], cpu[1], cpu[2]);

        // GPU, simulated.
        let mut gpu = Vec::new();
        for (p, pred) in [(&branching, false), (&branch_free, false), (&vectorized, true)] {
            let sim = GpuSimulator::titan_x().with_predication(pred);
            let (_, report) = sim.run(p, &cat).expect("sim");
            gpu.push(report.seconds * 1e6);
        }
        println!("{sel:>6} {:>14.2} {:>14.2} {:>14.2}   (GPU simulated)", gpu[0], gpu[1], gpu[2]);
    }
    println!("\nNote how the ordering flips between devices — the paper's");
    println!("point: the right technique is hardware- AND data-dependent.");
}
