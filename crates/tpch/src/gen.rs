//! The TPC-H table generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use voodoo_core::Buffer;
use voodoo_storage::{Catalog, Table, TableColumn};

use crate::dates::date;
use crate::sf1;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpchParams {
    /// Scale factor (1.0 ≈ 6M lineitems). Fractional scales supported.
    pub scale: f64,
    /// RNG seed — same seed, same data.
    pub seed: u64,
}

impl Default for TpchParams {
    fn default() -> Self {
        TpchParams {
            scale: 0.01,
            seed: 0x7CDB_5EED,
        }
    }
}

/// TPC-H region names (specification order).
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// TPC-H nations with their region keys (specification Appendix A).
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// Market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes.
pub const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Ship instructions.
pub const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Part name color vocabulary (subset of the spec's 92; includes the
/// colors queries match on).
pub const COLORS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "chartreuse",
    "chocolate",
    "coral",
    "forest",
    "green",
    "honeydew",
    "hot",
    "ivory",
];

/// Container size words × container kinds.
pub const CONTAINER_SIZES: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// Container kind words.
pub const CONTAINER_KINDS: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Type syllables (class × finish × material = 150 types).
pub const TYPE_CLASS: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Type finish words.
pub const TYPE_FINISH: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Type material words.
pub const TYPE_MATERIAL: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Last order date: 1998-12-31 − 151 days = 1998-08-02 (spec 4.2.3).
fn max_orderdate() -> i64 {
    date(1998, 8, 2)
}

/// Generate a catalog at the given scale with the default seed.
pub fn generate(scale: f64) -> Catalog {
    let mut cat = Catalog::in_memory();
    generate_into(
        &mut cat,
        TpchParams {
            scale,
            ..Default::default()
        },
    );
    cat
}

/// Generate all eight tables into an existing catalog.
pub fn generate_into(cat: &mut Catalog, params: TpchParams) {
    let scale = params.scale.max(0.0001);
    let scaled = |n: usize| ((n as f64 * scale).round() as usize).max(1);
    let n_supplier = scaled(sf1::SUPPLIER);
    let n_part = scaled(sf1::PART);
    let n_customer = scaled(sf1::CUSTOMER);
    let n_orders = scaled(sf1::ORDERS);
    let mut rng = SmallRng::seed_from_u64(params.seed);

    // region ----------------------------------------------------------
    let mut region = Table::new("region");
    region.add_column(TableColumn::from_buffer(
        "r_regionkey",
        Buffer::I64((0..sf1::REGION as i64).collect()),
    ));
    region.add_column(TableColumn::from_strings("r_name", &REGIONS));
    cat.insert_table(region);

    // nation ----------------------------------------------------------
    let mut nation = Table::new("nation");
    nation.add_column(TableColumn::from_buffer(
        "n_nationkey",
        Buffer::I64((0..sf1::NATION as i64).collect()),
    ));
    let nation_names: Vec<&str> = NATIONS.iter().map(|(n, _)| *n).collect();
    nation.add_column(TableColumn::from_strings("n_name", &nation_names));
    nation.add_column(TableColumn::from_buffer(
        "n_regionkey",
        Buffer::I64(NATIONS.iter().map(|(_, r)| *r).collect()),
    ));
    nation.add_foreign_key("n_regionkey", "region", "r_regionkey");
    cat.insert_table(nation);

    // supplier ---------------------------------------------------------
    let mut supplier = Table::new("supplier");
    supplier.add_column(TableColumn::from_buffer(
        "s_suppkey",
        Buffer::I64((0..n_supplier as i64).collect()),
    ));
    supplier.add_column(TableColumn::from_buffer(
        "s_nationkey",
        Buffer::I64((0..n_supplier).map(|_| rng.gen_range(0..25)).collect()),
    ));
    supplier.add_column(TableColumn::from_buffer(
        "s_acctbal",
        Buffer::I64(
            (0..n_supplier)
                .map(|_| rng.gen_range(-99999..999999))
                .collect(),
        ),
    ));
    supplier.add_foreign_key("s_nationkey", "nation", "n_nationkey");
    cat.insert_table(supplier);

    // customer ---------------------------------------------------------
    let mut customer = Table::new("customer");
    customer.add_column(TableColumn::from_buffer(
        "c_custkey",
        Buffer::I64((0..n_customer as i64).collect()),
    ));
    customer.add_column(TableColumn::from_buffer(
        "c_nationkey",
        Buffer::I64((0..n_customer).map(|_| rng.gen_range(0..25)).collect()),
    ));
    let seg_vals: Vec<&str> = (0..n_customer)
        .map(|_| SEGMENTS[rng.gen_range(0..SEGMENTS.len())])
        .collect();
    customer.add_column(TableColumn::from_strings("c_mktsegment", &seg_vals));
    customer.add_column(TableColumn::from_buffer(
        "c_acctbal",
        Buffer::I64(
            (0..n_customer)
                .map(|_| rng.gen_range(-99999..999999))
                .collect(),
        ),
    ));
    customer.add_foreign_key("c_nationkey", "nation", "n_nationkey");
    cat.insert_table(customer);

    // part --------------------------------------------------------------
    let mut part = Table::new("part");
    part.add_column(TableColumn::from_buffer(
        "p_partkey",
        Buffer::I64((0..n_part as i64).collect()),
    ));
    let name_vals: Vec<String> = (0..n_part)
        .map(|_| {
            let a = COLORS[rng.gen_range(0..COLORS.len())];
            let b = COLORS[rng.gen_range(0..COLORS.len())];
            format!("{a} {b}")
        })
        .collect();
    let name_refs: Vec<&str> = name_vals.iter().map(|s| s.as_str()).collect();
    part.add_column(TableColumn::from_strings("p_name", &name_refs));
    let brand_vals: Vec<String> = (0..n_part)
        .map(|_| format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6)))
        .collect();
    let brand_refs: Vec<&str> = brand_vals.iter().map(|s| s.as_str()).collect();
    part.add_column(TableColumn::from_strings("p_brand", &brand_refs));
    let type_vals: Vec<String> = (0..n_part)
        .map(|_| {
            format!(
                "{} {} {}",
                TYPE_CLASS[rng.gen_range(0..TYPE_CLASS.len())],
                TYPE_FINISH[rng.gen_range(0..TYPE_FINISH.len())],
                TYPE_MATERIAL[rng.gen_range(0..TYPE_MATERIAL.len())]
            )
        })
        .collect();
    let type_refs: Vec<&str> = type_vals.iter().map(|s| s.as_str()).collect();
    part.add_column(TableColumn::from_strings("p_type", &type_refs));
    part.add_column(TableColumn::from_buffer(
        "p_size",
        Buffer::I64((0..n_part).map(|_| rng.gen_range(1..51)).collect()),
    ));
    let cont_vals: Vec<String> = (0..n_part)
        .map(|_| {
            format!(
                "{} {}",
                CONTAINER_SIZES[rng.gen_range(0..CONTAINER_SIZES.len())],
                CONTAINER_KINDS[rng.gen_range(0..CONTAINER_KINDS.len())]
            )
        })
        .collect();
    let cont_refs: Vec<&str> = cont_vals.iter().map(|s| s.as_str()).collect();
    part.add_column(TableColumn::from_strings("p_container", &cont_refs));
    // Spec retail price formula keeps prices in [90000, 200000) cents.
    part.add_column(TableColumn::from_buffer(
        "p_retailprice",
        Buffer::I64(
            (0..n_part as i64)
                .map(|k| 90000 + (k % 20001) * 100 / 100 + (k % 1000) * 100)
                .collect(),
        ),
    ));
    cat.insert_table(part);

    // partsupp ------------------------------------------------------------
    let n_partsupp = n_part * 4;
    let mut partsupp = Table::new("partsupp");
    partsupp.add_column(TableColumn::from_buffer(
        "ps_partkey",
        Buffer::I64((0..n_partsupp as i64).map(|i| i / 4).collect()),
    ));
    // The spec's supplier permutation spreads a part's four suppliers;
    // a simple stride keeps the pairs unique.
    partsupp.add_column(TableColumn::from_buffer(
        "ps_suppkey",
        Buffer::I64(
            (0..n_partsupp as i64)
                .map(|i| {
                    let p = i / 4;
                    let j = i % 4;
                    (p + j * (n_supplier as i64 / 4).max(1)) % n_supplier as i64
                })
                .collect(),
        ),
    ));
    partsupp.add_column(TableColumn::from_buffer(
        "ps_availqty",
        Buffer::I64((0..n_partsupp).map(|_| rng.gen_range(1..10000)).collect()),
    ));
    partsupp.add_column(TableColumn::from_buffer(
        "ps_supplycost",
        Buffer::I64(
            (0..n_partsupp)
                .map(|_| rng.gen_range(100..100001))
                .collect(),
        ),
    ));
    partsupp.add_foreign_key("ps_partkey", "part", "p_partkey");
    partsupp.add_foreign_key("ps_suppkey", "supplier", "s_suppkey");
    cat.insert_table(partsupp);

    // orders + lineitem ----------------------------------------------------
    let max_od = max_orderdate();
    let mut o_orderkey = Vec::with_capacity(n_orders);
    let mut o_custkey = Vec::with_capacity(n_orders);
    let mut o_orderdate = Vec::with_capacity(n_orders);
    let mut o_priority: Vec<&str> = Vec::with_capacity(n_orders);

    let mut l_orderkey = Vec::new();
    let mut l_partkey = Vec::new();
    let mut l_suppkey = Vec::new();
    let mut l_linenumber = Vec::new();
    let mut l_quantity = Vec::new();
    let mut l_extendedprice = Vec::new();
    let mut l_discount = Vec::new();
    let mut l_tax = Vec::new();
    let mut l_returnflag: Vec<&str> = Vec::new();
    let mut l_linestatus: Vec<&str> = Vec::new();
    let mut l_shipdate = Vec::new();
    let mut l_commitdate = Vec::new();
    let mut l_receiptdate = Vec::new();
    let mut l_shipmode: Vec<&str> = Vec::new();
    let mut l_shipinstruct: Vec<&str> = Vec::new();

    let cutoff = date(1995, 6, 17);
    for ok in 0..n_orders as i64 {
        o_orderkey.push(ok);
        o_custkey.push(rng.gen_range(0..n_customer as i64));
        let od = rng.gen_range(0..=max_od);
        o_orderdate.push(od);
        o_priority.push(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]);

        let items = rng.gen_range(1..8);
        for ln in 0..items {
            l_orderkey.push(ok);
            l_linenumber.push(ln as i64 + 1);
            let pk = rng.gen_range(0..n_part as i64);
            l_partkey.push(pk);
            // Like dbgen, the line's supplier is one of the part's four
            // partsupp suppliers — so (partkey, suppkey) resolves to a
            // partsupp row, arithmetically (see `ps_index`).
            let j = rng.gen_range(0..4i64);
            let stride = (n_supplier as i64 / 4).max(1);
            l_suppkey.push((pk + j * stride) % n_supplier as i64);
            let qty = rng.gen_range(1..51i64);
            l_quantity.push(qty);
            let price = 90000 + (pk % 20001) + (pk % 1000) * 100;
            l_extendedprice.push(qty * price / 100 * 100 / 100); // cents
            l_discount.push(rng.gen_range(0..11i64)); // hundredths
            l_tax.push(rng.gen_range(0..9i64));
            let ship = od + rng.gen_range(1..122i64);
            let commit = od + rng.gen_range(30..91i64);
            let receipt = ship + rng.gen_range(1..31i64);
            l_shipdate.push(ship);
            l_commitdate.push(commit);
            l_receiptdate.push(receipt);
            if receipt <= cutoff {
                l_returnflag.push(if rng.gen_bool(0.5) { "R" } else { "A" });
            } else {
                l_returnflag.push("N");
            }
            l_linestatus.push(if ship > cutoff { "O" } else { "F" });
            l_shipmode.push(SHIPMODES[rng.gen_range(0..SHIPMODES.len())]);
            l_shipinstruct.push(INSTRUCTIONS[rng.gen_range(0..INSTRUCTIONS.len())]);
        }
    }

    let mut orders = Table::new("orders");
    orders.add_column(TableColumn::from_buffer(
        "o_orderkey",
        Buffer::I64(o_orderkey),
    ));
    orders.add_column(TableColumn::from_buffer(
        "o_custkey",
        Buffer::I64(o_custkey),
    ));
    orders.add_column(TableColumn::from_buffer(
        "o_orderdate",
        Buffer::I64(o_orderdate),
    ));
    orders.add_column(TableColumn::from_strings("o_orderpriority", &o_priority));
    orders.add_foreign_key("o_custkey", "customer", "c_custkey");
    cat.insert_table(orders);

    let mut lineitem = Table::new("lineitem");
    lineitem.add_column(TableColumn::from_buffer(
        "l_orderkey",
        Buffer::I64(l_orderkey),
    ));
    lineitem.add_column(TableColumn::from_buffer(
        "l_partkey",
        Buffer::I64(l_partkey),
    ));
    lineitem.add_column(TableColumn::from_buffer(
        "l_suppkey",
        Buffer::I64(l_suppkey),
    ));
    lineitem.add_column(TableColumn::from_buffer(
        "l_linenumber",
        Buffer::I64(l_linenumber),
    ));
    lineitem.add_column(TableColumn::from_buffer(
        "l_quantity",
        Buffer::I64(l_quantity),
    ));
    lineitem.add_column(TableColumn::from_buffer(
        "l_extendedprice",
        Buffer::I64(l_extendedprice),
    ));
    lineitem.add_column(TableColumn::from_buffer(
        "l_discount",
        Buffer::I64(l_discount),
    ));
    lineitem.add_column(TableColumn::from_buffer("l_tax", Buffer::I64(l_tax)));
    lineitem.add_column(TableColumn::from_strings("l_returnflag", &l_returnflag));
    lineitem.add_column(TableColumn::from_strings("l_linestatus", &l_linestatus));
    lineitem.add_column(TableColumn::from_buffer(
        "l_shipdate",
        Buffer::I64(l_shipdate),
    ));
    lineitem.add_column(TableColumn::from_buffer(
        "l_commitdate",
        Buffer::I64(l_commitdate),
    ));
    lineitem.add_column(TableColumn::from_buffer(
        "l_receiptdate",
        Buffer::I64(l_receiptdate),
    ));
    lineitem.add_column(TableColumn::from_strings("l_shipmode", &l_shipmode));
    lineitem.add_column(TableColumn::from_strings("l_shipinstruct", &l_shipinstruct));
    lineitem.add_foreign_key("l_orderkey", "orders", "o_orderkey");
    lineitem.add_foreign_key("l_partkey", "part", "p_partkey");
    lineitem.add_foreign_key("l_suppkey", "supplier", "s_suppkey");
    cat.insert_table(lineitem);
}

#[cfg(test)]
mod tests {
    use super::*;
    use voodoo_core::ScalarValue;

    fn small() -> Catalog {
        generate(0.002)
    }

    #[test]
    fn row_counts_scale() {
        let cat = small();
        assert_eq!(cat.table("region").unwrap().len, 5);
        assert_eq!(cat.table("nation").unwrap().len, 25);
        assert_eq!(cat.table("supplier").unwrap().len, 20);
        assert_eq!(cat.table("customer").unwrap().len, 300);
        assert_eq!(cat.table("orders").unwrap().len, 3000);
        let li = cat.table("lineitem").unwrap().len;
        // ~4 lineitems per order.
        assert!((9000..15000).contains(&li), "lineitem count {li}");
    }

    #[test]
    fn determinism() {
        let a = generate(0.001);
        let b = generate(0.001);
        let ta = a.table("lineitem").unwrap();
        let tb = b.table("lineitem").unwrap();
        assert_eq!(ta.len, tb.len);
        for c in 0..ta.columns.len() {
            assert_eq!(
                ta.columns[c].data, tb.columns[c].data,
                "column {}",
                ta.columns[c].name
            );
        }
    }

    #[test]
    fn foreign_keys_valid() {
        let cat = small();
        let li = cat.table("lineitem").unwrap();
        let n_orders = cat.table("orders").unwrap().len as i64;
        let n_part = cat.table("part").unwrap().len as i64;
        let ok = li.column("l_orderkey").unwrap();
        let pk = li.column("l_partkey").unwrap();
        for i in 0..li.len {
            let o = ok.data.get(i).map(|v| v.as_i64()).unwrap();
            let p = pk.data.get(i).map(|v| v.as_i64()).unwrap();
            assert!((0..n_orders).contains(&o));
            assert!((0..n_part).contains(&p));
        }
    }

    #[test]
    fn date_invariants() {
        let cat = small();
        let li = cat.table("lineitem").unwrap();
        let ship = li.column("l_shipdate").unwrap();
        let receipt = li.column("l_receiptdate").unwrap();
        for i in 0..li.len {
            let s = ship.data.get(i).map(|v| v.as_i64()).unwrap();
            let r = receipt.data.get(i).map(|v| v.as_i64()).unwrap();
            assert!(r > s, "receipt after ship at {i}");
        }
    }

    #[test]
    fn returnflag_rule() {
        let cat = small();
        let li = cat.table("lineitem").unwrap();
        let receipt = li.column("l_receiptdate").unwrap();
        let flag = li.column("l_returnflag").unwrap();
        let cutoff = date(1995, 6, 17);
        for i in 0..li.len {
            let r = receipt.data.get(i).map(|v| v.as_i64()).unwrap();
            let code = match flag.data.get(i).unwrap() {
                ScalarValue::I32(c) => c,
                other => panic!("flag not a dict code: {other:?}"),
            };
            let name = flag.decode(code).unwrap();
            if r > cutoff {
                assert_eq!(name, "N", "post-cutoff receipts are N");
            } else {
                assert!(name == "R" || name == "A");
            }
        }
    }

    #[test]
    fn dictionaries_cover_vocabulary() {
        let cat = small();
        let li = cat.table("lineitem").unwrap();
        let modes = li
            .column("l_shipmode")
            .unwrap()
            .dict
            .as_ref()
            .unwrap()
            .len();
        assert!(modes <= 7);
        let seg = cat
            .table("customer")
            .unwrap()
            .column("c_mktsegment")
            .unwrap();
        assert!(seg.dict.as_ref().unwrap().len() <= 5);
        // p_name contains the colors Q9 greps for.
        let names = cat.table("part").unwrap().column("p_name").unwrap();
        assert!(names
            .dict
            .as_ref()
            .unwrap()
            .iter()
            .any(|n| n.contains("green")));
    }

    #[test]
    fn stats_enable_identity_hashing() {
        let cat = small();
        let s = cat.column_stats("lineitem", "l_orderkey").unwrap();
        assert_eq!(s.min, 0);
        assert_eq!(s.max as usize, cat.table("orders").unwrap().len - 1);
    }

    #[test]
    fn q6_selectivity_plausible() {
        // Q6 filters one year + discount band + quantity: a few percent.
        let cat = small();
        let li = cat.table("lineitem").unwrap();
        let ship = li.column("l_shipdate").unwrap();
        let disc = li.column("l_discount").unwrap();
        let qty = li.column("l_quantity").unwrap();
        let (lo, hi) = (date(1994, 1, 1), date(1995, 1, 1));
        let mut hits = 0usize;
        for i in 0..li.len {
            let s = ship.data.get(i).map(|v| v.as_i64()).unwrap();
            let d = disc.data.get(i).map(|v| v.as_i64()).unwrap();
            let q = qty.data.get(i).map(|v| v.as_i64()).unwrap();
            if s >= lo && s < hi && (5..=7).contains(&d) && q < 24 {
                hits += 1;
            }
        }
        let sel = hits as f64 / li.len as f64;
        assert!(sel > 0.005 && sel < 0.05, "Q6 selectivity {sel}");
    }
}
