//! Keypaths: dotted paths addressing attributes of structured vectors.
//!
//! The paper (§2.1) writes keypaths with a leading dot (`.value`,
//! `.input.value`). [`KeyPath`] stores the normalized form without the
//! leading dot; `Display` restores it.

use std::fmt;

/// A (possibly nested) attribute path such as `.val` or `.input.value`.
///
/// The root path (all attributes of a vector) is written `KeyPath::root()`
/// and displays as `.`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyPath(String);

impl KeyPath {
    /// Parse a keypath; a leading dot is optional (`".val"` ≡ `"val"`).
    pub fn new(path: &str) -> Self {
        KeyPath(path.trim_start_matches('.').to_string())
    }

    /// The root keypath, designating every attribute of a vector.
    pub fn root() -> Self {
        KeyPath(String::new())
    }

    /// The conventional default attribute name for single-column vectors.
    pub fn val() -> Self {
        KeyPath("val".to_string())
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// Path components, in order.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('.').filter(|c| !c.is_empty())
    }

    /// Append a component (or whole sub-path), producing `.self.child`.
    pub fn child(&self, name: &str) -> KeyPath {
        let name = name.trim_start_matches('.');
        if self.is_root() {
            KeyPath(name.to_string())
        } else if name.is_empty() {
            self.clone()
        } else {
            KeyPath(format!("{}.{}", self.0, name))
        }
    }

    /// Whether `self` equals `prefix` or is nested below it.
    pub fn starts_with(&self, prefix: &KeyPath) -> bool {
        if prefix.is_root() {
            return true;
        }
        self.0 == prefix.0
            || (self.0.len() > prefix.0.len()
                && self.0.starts_with(&prefix.0)
                && self.0.as_bytes()[prefix.0.len()] == b'.')
    }

    /// Strip `prefix`, returning the relative remainder (root if equal).
    pub fn strip_prefix(&self, prefix: &KeyPath) -> Option<KeyPath> {
        if prefix.is_root() {
            return Some(self.clone());
        }
        if !self.starts_with(prefix) {
            return None;
        }
        if self.0.len() == prefix.0.len() {
            Some(KeyPath::root())
        } else {
            Some(KeyPath(self.0[prefix.0.len() + 1..].to_string()))
        }
    }

    /// The normalized dotless representation (for codegen identifiers).
    pub fn as_ident(&self) -> String {
        if self.is_root() {
            "root".to_string()
        } else {
            self.0.replace('.', "_")
        }
    }
}

impl fmt::Display for KeyPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{}", self.0)
    }
}

impl From<&str> for KeyPath {
    fn from(s: &str) -> Self {
        KeyPath::new(s)
    }
}

impl From<String> for KeyPath {
    fn from(s: String) -> Self {
        KeyPath::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_leading_dot() {
        assert_eq!(KeyPath::new(".val"), KeyPath::new("val"));
        assert_eq!(KeyPath::new(".a.b").to_string(), ".a.b");
    }

    #[test]
    fn root_behaviour() {
        let root = KeyPath::root();
        assert!(root.is_root());
        assert_eq!(root.child("x"), KeyPath::new("x"));
        assert!(KeyPath::new(".a.b").starts_with(&root));
    }

    #[test]
    fn prefix_logic() {
        let ab = KeyPath::new(".a.b");
        let a = KeyPath::new(".a");
        let ax = KeyPath::new(".ax");
        assert!(ab.starts_with(&a));
        assert!(!ax.starts_with(&a));
        assert_eq!(ab.strip_prefix(&a), Some(KeyPath::new("b")));
        assert_eq!(a.strip_prefix(&a), Some(KeyPath::root()));
        assert_eq!(ax.strip_prefix(&a), None);
    }

    #[test]
    fn components_and_child() {
        let kp = KeyPath::new(".input.value");
        let comps: Vec<_> = kp.components().collect();
        assert_eq!(comps, vec!["input", "value"]);
        assert_eq!(KeyPath::new("a").child(".b.c"), KeyPath::new("a.b.c"));
    }

    #[test]
    fn ident_form() {
        assert_eq!(KeyPath::new(".a.b").as_ident(), "a_b");
        assert_eq!(KeyPath::root().as_ident(), "root");
    }
}
