//! The relational frontend end to end through one `Session`: generate
//! TPC-H data, run paper queries on all three backends, re-run them to hit
//! the prepared-plan cache, and finish with ad-hoc SQL (including the
//! MIN/MAX/AVG aggregates) — cross-checking everything.
//!
//! ```sh
//! cargo run --release --example tpch_sql
//! ```

use std::time::Instant;

use voodoo::relational::Session;
use voodoo::tpch::queries::Query;

fn main() {
    let sf = 0.01;
    println!("generating TPC-H at SF {sf}...");
    let session = Session::tpch(sf);
    println!(
        "lineitem rows: {}",
        session
            .catalog()
            .table("lineitem")
            .map(|t| t.len)
            .unwrap_or(0)
    );

    for q in [Query::Q6, Query::Q1, Query::Q5, Query::Q19] {
        let t = Instant::now();
        let hyper = voodoo::baselines::hyper::run(&session.catalog(), q);
        let t_hyper = t.elapsed();

        let stmt = session.query(q);
        let t = Instant::now();
        let cold = stmt.run().expect("voodoo").into_rows();
        let t_cold = t.elapsed();
        let t = Instant::now();
        let warm = stmt.run().expect("voodoo warm").into_rows();
        let t_warm = t.elapsed();

        assert_eq!(hyper, cold, "{} results must agree", q.name());
        assert_eq!(cold, warm);
        assert_eq!(cold, stmt.run_on("interp").expect("interp").into_rows());
        assert_eq!(cold, stmt.run_on("gpu").expect("gpu").into_rows());
        println!(
            "{:>4}: {} row(s) | hyper {:>9.3?} | voodoo cold {:>9.3?} | warm (cached plan) {:>9.3?}",
            q.name(),
            cold.len(),
            t_hyper,
            t_cold,
            t_warm,
        );
    }
    let stats = session.cache_stats();
    println!(
        "plan cache: {} prepared, {} cache hits across the re-runs and re-targets",
        stats.misses, stats.hits
    );

    // Ad-hoc SQL through the parser + lowering — same Session, any backend.
    let sql = "SELECT l_returnflag, SUM(l_quantity), AVG(l_extendedprice), \
               MIN(l_discount), MAX(l_discount), COUNT(*) FROM lineitem \
               WHERE l_discount BETWEEN 5 AND 7 GROUP BY l_returnflag";
    println!("\nSQL: {sql}");
    let stmt = session.sql(sql).expect("parse");
    let rows = stmt.run().expect("run").into_rows();
    assert_eq!(rows, stmt.run_on("interp").expect("interp").into_rows());
    for row in &rows.rows {
        println!("  {row:?}");
    }
}
