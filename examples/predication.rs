//! Tunability demo: the three selection strategies of Figure 15 (and the
//! predication flag of Figure 1), on the CPU and the simulated GPU —
//! driven entirely through the unified backend API.
//!
//! The same scan-select-aggregate query is expressed three ways — each a
//! one-operator (or one-flag) change — and behaves very differently per
//! device, reproducing the paper's §5.3 "Selective Aggregation" study.
//! Each variant is a registered `Session` backend; the statements
//! themselves never change.
//!
//! ```sh
//! cargo run --release --example predication
//! ```

use std::sync::Arc;
use std::time::Instant;

use voodoo::backend::{CpuBackend, SimGpuBackend};
use voodoo::compile::exec::ExecOptions;
use voodoo::gpusim::GpuSimulator;
use voodoo::relational::Session;
use voodoo_bench::micro;

fn main() {
    let n = 1 << 18;
    let session = Session::new(micro::selection_catalog(n, 42));
    // The §4 physical tuning flag, exposed as two extra backends.
    session.register(
        "cpu-branchfree",
        Arc::new(CpuBackend::new(ExecOptions {
            predicated_select: true,
            ..Default::default()
        })),
    );
    session.register(
        "gpu-branchfree",
        Arc::new(SimGpuBackend::new(
            GpuSimulator::titan_x().with_predication(true),
        )),
    );

    println!("selection over {n} values; times in microseconds\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14}   (device)",
        "sel%", "branching", "branch-free", "vectorized"
    );
    for sel in [1.0, 10.0, 50.0, 90.0] {
        let c = micro::cutoff(sel / 100.0);
        let variants = [
            (micro::prog_select_sum_branching(c), "cpu", "gpu"),
            (micro::prog_select_sum_predicated(c), "cpu", "gpu"),
            (
                micro::prog_select_sum_vectorized(c, 4096),
                "cpu-branchfree",
                "gpu-branchfree",
            ),
        ];

        // CPU, measured (plans come pre-compiled from the session cache
        // after the first call).
        let mut cpu = Vec::new();
        for (p, cpu_backend, _) in &variants {
            let stmt = session.program(p.clone());
            stmt.run_on(cpu_backend).expect("warmup");
            let t = Instant::now();
            std::hint::black_box(stmt.run_on(cpu_backend).expect("run"));
            cpu.push(t.elapsed().as_secs_f64() * 1e6);
        }
        println!(
            "{sel:>6} {:>14.1} {:>14.1} {:>14.1}   (CPU measured)",
            cpu[0], cpu[1], cpu[2]
        );

        // GPU, simulated: profile() prices the event trace.
        let mut gpu = Vec::new();
        for (p, _, gpu_backend) in &variants {
            let prof = session
                .program(p.clone())
                .profile_on(gpu_backend)
                .expect("sim");
            gpu.push(prof.simulated_seconds.expect("priced") * 1e6);
        }
        println!(
            "{sel:>6} {:>14.2} {:>14.2} {:>14.2}   (GPU simulated)",
            gpu[0], gpu[1], gpu[2]
        );
    }
    println!("\nNote how the ordering flips between devices — the paper's");
    println!("point: the right technique is hardware- AND data-dependent.");
}
