//! A small SQL subset, parsed and lowered through the Voodoo builder.
//!
//! The paper uses MonetDB's SQL parser; this module stands in for it with
//! a deliberately small grammar that exercises the same lowering paths as
//! the hand-built TPC-H plans:
//!
//! ```text
//! query   := SELECT items FROM ident [WHERE conj] [GROUP BY ident]
//! items   := item (',' item)*
//! item    := SUM '(' expr ')' | MIN '(' expr ')' | MAX '(' expr ')'
//!          | AVG '(' expr ')' | COUNT '(' '*' ')' | ident
//! expr    := term (('+'|'-') term)*
//! term    := factor (('*'|'/') factor)*
//! factor  := ident | number | '(' expr ')'
//! conj    := cmp (AND cmp)*
//! cmp     := expr ('<'|'<='|'>'|'>='|'='|'<>') expr
//!          | expr BETWEEN number AND number
//! ```
//!
//! `AVG` is integer average (`SUM/COUNT`, truncating), matching the
//! engine-wide integer arithmetic; over zero qualifying rows the
//! `MIN`/`MAX`/`AVG` of an ungrouped query is reported as 0.
//!
//! Grouping columns must be dense non-negative integers (the planner sizes
//! the group domain from the column's min/max statistics — the paper's
//! "identity hashing ... using only min and max").

use voodoo_core::{AggKind, BinOp, KeyPath, Program, Result, VRef, VoodooError};
use voodoo_storage::Catalog;

use crate::builder::{extract_grouped, extract_scalar, QB};

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlQuery {
    /// Selected items.
    pub items: Vec<Item>,
    /// Source table.
    pub table: String,
    /// Conjunctive predicate.
    pub predicate: Vec<Cmp>,
    /// Optional group-by column.
    pub group_by: Option<String>,
}

/// One select item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `SUM(expr)`.
    Sum(Expr),
    /// `MIN(expr)`.
    Min(Expr),
    /// `MAX(expr)`.
    Max(Expr),
    /// `AVG(expr)` — integer average, lowered as `SUM`/`COUNT`.
    Avg(Expr),
    /// `COUNT(*)`.
    CountStar,
    /// A bare column (must be the group-by column).
    Column(String),
}

/// Arithmetic expressions over columns and integer literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Col(String),
    /// Integer literal.
    Lit(i64),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// A comparison in the WHERE conjunction.
#[derive(Debug, Clone, PartialEq)]
pub struct Cmp {
    /// Comparison operator.
    pub op: BinOp,
    /// Left side.
    pub lhs: Expr,
    /// Right side.
    pub rhs: Expr,
}

// ---------------------------------------------------------------------
// Tokenizer + recursive-descent parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Sym(char),
    Le,
    Ge,
    Ne,
}

fn tokenize(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let b: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let s = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Tok::Ident(
                b[s..i].iter().collect::<String>().to_uppercase(),
            ));
        } else if c.is_ascii_digit()
            || (c == '-'
                && i + 1 < b.len()
                && b[i + 1].is_ascii_digit()
                && matches!(
                    out.last(),
                    None | Some(Tok::Sym(_)) | Some(Tok::Le) | Some(Tok::Ge) | Some(Tok::Ne)
                ))
        {
            let s = i;
            i += 1;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = b[s..i].iter().collect();
            out.push(Tok::Num(text.parse().map_err(|_| {
                VoodooError::Backend(format!("bad number {text}"))
            })?));
        } else if c == '<' && i + 1 < b.len() && b[i + 1] == '=' {
            out.push(Tok::Le);
            i += 2;
        } else if c == '>' && i + 1 < b.len() && b[i + 1] == '=' {
            out.push(Tok::Ge);
            i += 2;
        } else if c == '<' && i + 1 < b.len() && b[i + 1] == '>' {
            out.push(Tok::Ne);
            i += 2;
        } else if "(),*+-/<>=".contains(c) {
            out.push(Tok::Sym(c));
            i += 1;
        } else {
            return Err(VoodooError::Backend(format!("unexpected character {c:?}")));
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    /// One-slot queue for the second half of a desugared BETWEEN.
    pending: Option<Cmp>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(VoodooError::Backend(format!(
                "expected {kw}, got {other:?}"
            ))),
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<()> {
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(VoodooError::Backend(format!(
                "expected {c:?}, got {other:?}"
            ))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn parse_agg_arg(&mut self) -> Result<Expr> {
        self.next();
        self.expect_sym('(')?;
        let e = self.parse_expr()?;
        self.expect_sym(')')?;
        Ok(e)
    }

    fn parse_item(&mut self) -> Result<Item> {
        if self.at_kw("SUM") {
            Ok(Item::Sum(self.parse_agg_arg()?))
        } else if self.at_kw("MIN") {
            Ok(Item::Min(self.parse_agg_arg()?))
        } else if self.at_kw("MAX") {
            Ok(Item::Max(self.parse_agg_arg()?))
        } else if self.at_kw("AVG") {
            Ok(Item::Avg(self.parse_agg_arg()?))
        } else if self.at_kw("COUNT") {
            self.next();
            self.expect_sym('(')?;
            self.expect_sym('*')?;
            self.expect_sym(')')?;
            Ok(Item::CountStar)
        } else {
            match self.next() {
                Some(Tok::Ident(s)) => Ok(Item::Column(s.to_lowercase())),
                other => Err(VoodooError::Backend(format!(
                    "expected item, got {other:?}"
                ))),
            }
        }
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek() {
                Some(Tok::Sym('+')) => {
                    self.next();
                    lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(self.parse_term()?));
                }
                Some(Tok::Sym('-')) => {
                    self.next();
                    lhs = Expr::Bin(BinOp::Subtract, Box::new(lhs), Box::new(self.parse_term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_factor()?;
        loop {
            match self.peek() {
                Some(Tok::Sym('*')) => {
                    self.next();
                    lhs = Expr::Bin(
                        BinOp::Multiply,
                        Box::new(lhs),
                        Box::new(self.parse_factor()?),
                    );
                }
                Some(Tok::Sym('/')) => {
                    self.next();
                    lhs = Expr::Bin(BinOp::Divide, Box::new(lhs), Box::new(self.parse_factor()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_factor(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(Expr::Col(s.to_lowercase())),
            Some(Tok::Num(n)) => Ok(Expr::Lit(n)),
            Some(Tok::Sym('(')) => {
                let e = self.parse_expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            other => Err(VoodooError::Backend(format!(
                "expected factor, got {other:?}"
            ))),
        }
    }

    fn parse_cmp(&mut self) -> Result<Cmp> {
        let lhs = self.parse_expr()?;
        if self.at_kw("BETWEEN") {
            self.next();
            let lo = self.parse_expr()?;
            self.expect_kw("AND")?;
            let hi = self.parse_expr()?;
            // Desugar into two comparisons chained by the caller: encode as
            // lo <= lhs AND lhs <= hi by returning the first and pushing the
            // second through a synthetic token rewind — simpler: represent
            // BETWEEN directly as two Cmps via a marker. We return the GE
            // half and stash the LE half.
            self.pending = Some(Cmp {
                op: BinOp::LessEquals,
                lhs: lhs.clone(),
                rhs: hi,
            });
            return Ok(Cmp {
                op: BinOp::GreaterEquals,
                lhs,
                rhs: lo,
            });
        }
        let op = match self.next() {
            Some(Tok::Sym('<')) => BinOp::Less,
            Some(Tok::Sym('>')) => BinOp::Greater,
            Some(Tok::Sym('=')) => BinOp::Equals,
            Some(Tok::Le) => BinOp::LessEquals,
            Some(Tok::Ge) => BinOp::GreaterEquals,
            Some(Tok::Ne) => BinOp::NotEquals,
            other => {
                return Err(VoodooError::Backend(format!(
                    "expected operator, got {other:?}"
                )))
            }
        };
        let rhs = self.parse_expr()?;
        Ok(Cmp { op, lhs, rhs })
    }
}

/// Parse a SQL string.
pub fn parse(input: &str) -> Result<SqlQuery> {
    let mut p = Parser {
        toks: tokenize(input)?,
        pos: 0,
        pending: None,
    };
    let mut q = p.parse_query_with_pending()?;
    // Bare columns are only allowed when they name the group-by key.
    for item in &q.items {
        if let Item::Column(c) = item {
            if q.group_by.as_deref() != Some(c.as_str()) {
                return Err(VoodooError::Backend(format!(
                    "column {c} is neither aggregated nor the GROUP BY key"
                )));
            }
        }
    }
    q.items.retain(|i| !matches!(i, Item::Column(_)));
    Ok(q)
}

impl Parser {
    fn parse_query_with_pending(&mut self) -> Result<SqlQuery> {
        // parse_query but flushing BETWEEN's second half after each cmp.
        self.expect_kw("SELECT")?;
        let mut items = vec![self.parse_item()?];
        while matches!(self.peek(), Some(Tok::Sym(','))) {
            self.next();
            items.push(self.parse_item()?);
        }
        self.expect_kw("FROM")?;
        let table = match self.next() {
            Some(Tok::Ident(s)) => s.to_lowercase(),
            other => {
                return Err(VoodooError::Backend(format!(
                    "expected table, got {other:?}"
                )))
            }
        };
        let mut predicate = Vec::new();
        if self.at_kw("WHERE") {
            self.next();
            loop {
                let c = self.parse_cmp()?;
                predicate.push(c);
                if let Some(second) = self.pending.take() {
                    predicate.push(second);
                }
                if self.at_kw("AND") {
                    self.next();
                } else {
                    break;
                }
            }
        }
        let mut group_by = None;
        if self.at_kw("GROUP") {
            self.next();
            self.expect_kw("BY")?;
            group_by = Some(match self.next() {
                Some(Tok::Ident(s)) => s.to_lowercase(),
                other => {
                    return Err(VoodooError::Backend(format!(
                        "expected column, got {other:?}"
                    )))
                }
            });
        }
        if self.pos != self.toks.len() {
            return Err(VoodooError::Backend(
                "trailing tokens after query".to_string(),
            ));
        }
        Ok(SqlQuery {
            items,
            table,
            predicate,
            group_by,
        })
    }
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// How one visible output column is computed from the returned aggregate
/// vectors (slots index the agg vectors after the group key, if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutCol {
    /// The slot's folded value, as-is (`SUM`, `COUNT(*)`).
    Plain(usize),
    /// The slot's folded value, but 0 when no row qualified — `MIN`/`MAX`,
    /// whose masked lowering substitutes an identity sentinel.
    Guarded(usize),
    /// `AVG`: the slot holds the sum; divide by the count slot.
    Avg(usize),
}

/// Lower a parsed query to a Voodoo program (returned alongside metadata
/// needed to extract rows).
pub struct LoweredQuery {
    /// The Voodoo program.
    pub program: Program,
    /// Whether results are grouped (vs a single global row).
    pub grouped: bool,
    /// Number of visible aggregate output columns.
    pub aggs: usize,
    /// Recipe for each visible output column, in `SELECT` order.
    pub outputs: Vec<OutCol>,
    /// Slot index of the qualifying-row count (always present for grouped
    /// queries; present globally when `MIN`/`MAX`/`AVG` need the guard).
    pub count_slot: Option<usize>,
}

/// `MIN`'s identity sentinel: masked-out rows contribute this value, which
/// never wins against a real row. (Degenerate only if actual data contains
/// `i64::MAX` itself.)
const MIN_IDENTITY: i64 = i64::MAX;
/// `MAX`'s identity sentinel.
const MAX_IDENTITY: i64 = i64::MIN;

fn lower_expr(qb: &mut QB, table: VRef, e: &Expr) -> Result<VRef> {
    Ok(match e {
        Expr::Col(c) => qb.p.project(table, KeyPath::new(c), KeyPath::val()),
        Expr::Lit(n) => qb.p.constant(*n),
        Expr::Bin(op, l, r) => {
            let lv = lower_expr(qb, table, l)?;
            let rv = lower_expr(qb, table, r)?;
            qb.p.binary(*op, lv, rv)
        }
    })
}

/// Lower a query against a catalog.
pub fn lower(cat: &Catalog, q: &SqlQuery) -> Result<LoweredQuery> {
    let stats_domain = |col: &str| -> Result<usize> {
        let s = cat
            .column_stats(&q.table, col)
            .ok_or_else(|| VoodooError::Backend(format!("no stats for {}.{col}", q.table)))?;
        if s.min < 0 {
            return Err(VoodooError::Backend(format!(
                "GROUP BY column {col} must be non-negative (dense domain)"
            )));
        }
        Ok(s.max as usize + 1)
    };

    let mut qb = QB::new();
    let table = qb.table(&q.table);
    // WHERE conjunction as a mask.
    let mut mask: Option<VRef> = None;
    for cmp in &q.predicate {
        let l = lower_expr(&mut qb, table, &cmp.lhs)?;
        let r = lower_expr(&mut qb, table, &cmp.rhs)?;
        let c = qb.p.binary(cmp.op, l, r);
        mask = Some(match mask {
            None => c,
            Some(m) => qb.p.binary(BinOp::LogicalAnd, m, c),
        });
    }

    // Multiply-masking is correct for SUM/COUNT (masked-out rows add 0)
    // but not for MIN/MAX, whose masked rows instead contribute the
    // aggregation's identity element so they can never win the fold.
    let sentinel_masked = |qb: &mut QB, v: VRef, m: VRef, identity: i64| -> VRef {
        let keep = qb.masked(v, m);
        let inv = qb.rsub_c(1, m, ".val");
        let fill = qb.p.mul_const(inv, identity);
        qb.p.add(keep, fill)
    };

    // One aggregate slot per item (AVG reuses the count slot for its
    // denominator); `outputs` records how to read each visible column.
    let mut vals: Vec<(VRef, AggKind)> = Vec::new();
    let mut outputs = Vec::new();
    let mut needs_count = q.group_by.is_some();
    for item in &q.items {
        match item {
            Item::Sum(e) => {
                let v = lower_expr(&mut qb, table, e)?;
                let v = match mask {
                    Some(m) => qb.masked(v, m),
                    None => v,
                };
                outputs.push(OutCol::Plain(vals.len()));
                vals.push((v, AggKind::Sum));
            }
            Item::CountStar => {
                let ones = qb.p.constant_like(1i64, table);
                let v = match mask {
                    Some(m) => qb.masked(ones, m),
                    None => ones,
                };
                outputs.push(OutCol::Plain(vals.len()));
                vals.push((v, AggKind::Sum));
            }
            Item::Min(e) | Item::Max(e) => {
                let (kind, identity) = match item {
                    Item::Min(_) => (AggKind::Min, MIN_IDENTITY),
                    _ => (AggKind::Max, MAX_IDENTITY),
                };
                let v = lower_expr(&mut qb, table, e)?;
                let v = match mask {
                    Some(m) => sentinel_masked(&mut qb, v, m, identity),
                    None => v,
                };
                outputs.push(OutCol::Guarded(vals.len()));
                vals.push((v, kind));
                needs_count = true;
            }
            Item::Avg(e) => {
                let v = lower_expr(&mut qb, table, e)?;
                let v = match mask {
                    Some(m) => qb.masked(v, m),
                    None => v,
                };
                outputs.push(OutCol::Avg(vals.len()));
                vals.push((v, AggKind::Sum));
                needs_count = true;
            }
            Item::Column(_) => continue,
        }
    }
    let aggs = outputs.len();

    // Qualifying-row count: group-emptiness filter, MIN/MAX guard and AVG
    // denominator, staged as the trailing slot.
    let count_slot = if needs_count {
        let count_src = match mask {
            Some(m) => qb.p.project(m, KeyPath::val(), KeyPath::val()),
            None => qb.p.constant_like(1i64, table),
        };
        let slot = vals.len();
        vals.push((count_src, AggKind::Sum));
        Some(slot)
    } else {
        None
    };

    match &q.group_by {
        Some(col) => {
            let domain = stats_domain(col)?;
            let key = qb.p.project(table, KeyPath::new(col), KeyPath::val());
            let (kf, sums) = qb.group_aggs(key, domain, &vals);
            qb.ret(kf);
            for s in sums {
                qb.ret(s);
            }
            Ok(LoweredQuery {
                program: qb.finish(),
                grouped: true,
                aggs,
                outputs,
                count_slot,
            })
        }
        None => {
            for (v, kind) in vals {
                let s =
                    qb.p.fold_agg_kp(kind, v, None, KeyPath::val(), KeyPath::val());
                qb.ret(s);
            }
            Ok(LoweredQuery {
                program: qb.finish(),
                grouped: false,
                aggs,
                outputs,
                count_slot,
            })
        }
    }
}

/// Extract the final result rows from a lowered query's outputs.
pub fn extract_rows(lowered: &LoweredQuery, out: &voodoo_interp::ExecOutput) -> Vec<Vec<i64>> {
    // Resolve one visible column from the folded slot values (tolerating
    // short outputs, e.g. a caller substituting a default ExecOutput after
    // an engine error).
    let resolve = |col: &OutCol, slots: &[i64], count: i64| -> i64 {
        let at = |s: &usize| slots.get(*s).copied().unwrap_or(0);
        match col {
            OutCol::Plain(s) => at(s),
            OutCol::Guarded(s) => {
                if count > 0 {
                    at(s)
                } else {
                    0
                }
            }
            OutCol::Avg(s) => {
                if count > 0 {
                    at(s) / count
                } else {
                    0
                }
            }
        }
    };
    if lowered.grouped {
        if out.returns.is_empty() {
            return Vec::new();
        }
        let sums: Vec<&voodoo_core::StructuredVector> = out.returns[1..].iter().collect();
        let rows = extract_grouped(&out.returns[0], &sums);
        let count_slot = lowered.count_slot.expect("grouped queries always count");
        let mut result: Vec<Vec<i64>> = rows
            .into_iter()
            .filter(|(_, v)| v[count_slot] > 0)
            .map(|(k, v)| {
                let count = v[count_slot];
                let mut row = vec![k];
                row.extend(lowered.outputs.iter().map(|c| resolve(c, &v, count)));
                row
            })
            .collect();
        result.sort_unstable();
        result
    } else {
        let slots: Vec<i64> = out.returns.iter().map(extract_scalar).collect();
        let count = lowered
            .count_slot
            .map(|s| slots.get(s).copied().unwrap_or(0))
            .unwrap_or(i64::MAX);
        vec![lowered
            .outputs
            .iter()
            .map(|c| resolve(c, &slots, count))
            .collect()]
    }
}

/// Parse, lower and run a SQL string on the given executor.
pub fn execute<F>(cat: &Catalog, sql: &str, mut exec: F) -> Result<Vec<Vec<i64>>>
where
    F: FnMut(&Program, &Catalog) -> voodoo_interp::ExecOutput,
{
    let q = parse(sql)?;
    let lowered = lower(cat, &q)?;
    let out = exec(&lowered.program, cat);
    Ok(extract_rows(&lowered, &out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use voodoo_interp::Interpreter;

    fn cat() -> Catalog {
        let mut cat = Catalog::in_memory();
        let mut t = voodoo_storage::Table::new("sales");
        t.add_column(voodoo_storage::TableColumn::from_buffer(
            "region",
            voodoo_core::Buffer::I64(vec![0, 1, 0, 2, 1, 0]),
        ));
        t.add_column(voodoo_storage::TableColumn::from_buffer(
            "amount",
            voodoo_core::Buffer::I64(vec![10, 20, 30, 40, 50, 60]),
        ));
        t.add_column(voodoo_storage::TableColumn::from_buffer(
            "qty",
            voodoo_core::Buffer::I64(vec![1, 2, 3, 4, 5, 6]),
        ));
        cat.insert_table(t);
        cat
    }

    fn run(sql: &str) -> Vec<Vec<i64>> {
        let cat = cat();
        execute(&cat, sql, |p, c| {
            Interpreter::new(c).run_program(p).unwrap()
        })
        .unwrap()
    }

    #[test]
    fn parses_basic_query() {
        let q = parse("SELECT SUM(amount) FROM sales WHERE qty > 2").unwrap();
        assert_eq!(q.table, "sales");
        assert_eq!(q.items.len(), 1);
        assert_eq!(q.predicate.len(), 1);
    }

    #[test]
    fn global_aggregate() {
        let rows = run("SELECT SUM(amount), COUNT(*) FROM sales WHERE qty > 2");
        assert_eq!(rows, vec![vec![30 + 40 + 50 + 60, 4]]);
    }

    #[test]
    fn grouped_aggregate() {
        let rows = run("SELECT region, SUM(amount) FROM sales GROUP BY region");
        assert_eq!(rows, vec![vec![0, 100], vec![1, 70], vec![2, 40]]);
    }

    #[test]
    fn grouped_with_filter_drops_empty_groups() {
        let rows = run("SELECT region, SUM(amount) FROM sales WHERE amount >= 50 GROUP BY region");
        assert_eq!(rows, vec![vec![0, 60], vec![1, 50]]);
    }

    #[test]
    fn between_desugars() {
        let rows = run("SELECT SUM(amount) FROM sales WHERE qty BETWEEN 2 AND 4");
        assert_eq!(rows, vec![vec![20 + 30 + 40]]);
    }

    #[test]
    fn arithmetic_in_aggregate() {
        let rows = run("SELECT SUM(amount * qty) FROM sales WHERE region = 0");
        assert_eq!(rows, vec![vec![10 + 90 + 360]]);
    }

    #[test]
    fn min_max_global() {
        let rows = run("SELECT MIN(amount), MAX(amount) FROM sales");
        assert_eq!(rows, vec![vec![10, 60]]);
    }

    #[test]
    fn min_max_respect_where_mask() {
        // Without sentinel masking a multiply-masked MIN would see 0s.
        let rows = run("SELECT MIN(amount), MAX(amount), COUNT(*) FROM sales WHERE qty > 2");
        assert_eq!(rows, vec![vec![30, 60, 4]]);
    }

    #[test]
    fn min_max_empty_selection_reports_zero() {
        let rows = run("SELECT MIN(amount), MAX(amount), COUNT(*) FROM sales WHERE qty > 100");
        assert_eq!(rows, vec![vec![0, 0, 0]]);
    }

    #[test]
    fn min_of_negative_values() {
        let cat = {
            let mut cat = Catalog::in_memory();
            let mut t = voodoo_storage::Table::new("t");
            t.add_column(voodoo_storage::TableColumn::from_buffer(
                "v",
                voodoo_core::Buffer::I64(vec![-7, 3, -2, 9]),
            ));
            t.add_column(voodoo_storage::TableColumn::from_buffer(
                "keep",
                voodoo_core::Buffer::I64(vec![1, 1, 0, 1]),
            ));
            cat.insert_table(t);
            cat
        };
        let rows = execute(
            &cat,
            "SELECT MIN(v), MAX(v) FROM t WHERE keep = 1",
            |p, c| Interpreter::new(c).run_program(p).unwrap(),
        )
        .unwrap();
        assert_eq!(rows, vec![vec![-7, 9]]);
    }

    #[test]
    fn grouped_min_max() {
        let rows = run("SELECT region, MIN(amount), MAX(amount) FROM sales GROUP BY region");
        assert_eq!(
            rows,
            vec![vec![0, 10, 60], vec![1, 20, 50], vec![2, 40, 40]]
        );
    }

    #[test]
    fn grouped_min_with_filter_ignores_masked_rows() {
        // region 0 holds amounts {10, 30, 60}; the filter keeps {30, 60}.
        let rows = run("SELECT region, MIN(amount) FROM sales WHERE amount >= 30 GROUP BY region");
        assert_eq!(rows, vec![vec![0, 30], vec![1, 50], vec![2, 40]]);
    }

    #[test]
    fn avg_is_integer_sum_over_count() {
        let rows = run("SELECT AVG(amount) FROM sales");
        assert_eq!(rows, vec![vec![210 / 6]]);
        let rows = run("SELECT AVG(amount) FROM sales WHERE qty > 2");
        assert_eq!(rows, vec![vec![(30 + 40 + 50 + 60) / 4]]);
        let rows = run("SELECT region, AVG(amount) FROM sales GROUP BY region");
        assert_eq!(rows, vec![vec![0, 100 / 3], vec![1, 35], vec![2, 40]]);
    }

    #[test]
    fn avg_of_empty_selection_is_zero() {
        let rows = run("SELECT AVG(amount) FROM sales WHERE qty > 100");
        assert_eq!(rows, vec![vec![0]]);
    }

    #[test]
    fn mixed_aggregates_in_one_query() {
        let rows = run(
            "SELECT region, SUM(amount), MIN(qty), MAX(qty), AVG(amount), COUNT(*) \
             FROM sales GROUP BY region",
        );
        assert_eq!(
            rows,
            vec![
                vec![0, 100, 1, 6, 33, 3],
                vec![1, 70, 2, 5, 35, 2],
                vec![2, 40, 4, 4, 40, 1],
            ]
        );
    }

    #[test]
    fn rejects_bare_non_group_column() {
        let cat = cat();
        let q = parse("SELECT amount FROM sales GROUP BY region");
        assert!(q.is_err());
        let _ = cat;
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELEKT x FROM y").is_err());
        assert!(parse("SELECT SUM(x FROM y").is_err());
        assert!(parse("SELECT SUM(x) FROM y WHERE !").is_err());
    }
}
