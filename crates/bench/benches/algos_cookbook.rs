//! Criterion benches for the `voodoo-algos` cookbook: ablations over the
//! tuning knobs DESIGN.md calls out — fold strategy (Figure 3 vs 4),
//! vectorization chunk size (Figure 15's knob), and the bounded
//! hash-table rounds of §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voodoo_algos::selection::{self, SelectionStrategy};
use voodoo_algos::{aggregate, compaction, hashtable, FoldStrategy};
use voodoo_compile::exec::{ExecOptions, Executor};
use voodoo_compile::Compiler;
use voodoo_storage::Catalog;

fn catalog(n: usize) -> Catalog {
    let mut cat = Catalog::in_memory();
    cat.put_i64_column(
        "input",
        &(0..n as i64)
            .map(|i| (i * 2654435761) % 4096)
            .collect::<Vec<_>>(),
    );
    cat
}

fn bench_fold_strategies(c: &mut Criterion) {
    let n = 1 << 18;
    let cat = catalog(n);
    let mut g = c.benchmark_group("fold_strategy");
    g.sample_size(10);
    for (name, strat) in [
        ("global", FoldStrategy::Global),
        ("partitions_4k", FoldStrategy::Partitions { size: 4096 }),
        ("partitions_64k", FoldStrategy::Partitions { size: 65536 }),
        ("lanes_8", FoldStrategy::Lanes { lanes: 8 }),
    ] {
        let p = aggregate::hierarchical_sum("input", strat);
        let cp = Compiler::new(&cat).compile(&p).unwrap();
        g.bench_function(BenchmarkId::new("hierarchical_sum", name), |b| {
            let exec = Executor::with_threads(4);
            b.iter(|| exec.run(&cp, &cat).unwrap());
        });
    }
    g.finish();
}

fn bench_vectorization_chunks(c: &mut Criterion) {
    let n = 1 << 18;
    let cat = catalog(n);
    let mut g = c.benchmark_group("vectorization_chunk");
    g.sample_size(10);
    for chunk in [256usize, 4096, 65536] {
        let p = selection::select_sum("input", 0, 2048, SelectionStrategy::Vectorized { chunk });
        let cp = Compiler::new(&cat).compile(&p).unwrap();
        g.bench_with_input(BenchmarkId::new("select_sum", chunk), &chunk, |b, _| {
            let exec = Executor::new(ExecOptions {
                predicated_select: true,
                ..Default::default()
            });
            b.iter(|| exec.run(&cp, &cat).unwrap());
        });
    }
    g.finish();
}

fn bench_hashtable_rounds(c: &mut Criterion) {
    // §6: the bounded-iteration scheme trades program size (rounds) for
    // collision tolerance; this ablation measures the cost per round.
    let keys: Vec<i64> = (0..4096).map(|i| i * 31 + 7).collect();
    let mut cat = Catalog::in_memory();
    cat.put_i64_column("keys", &keys);
    let mut g = c.benchmark_group("hashtable_rounds");
    g.sample_size(10);
    for rounds in [2usize, 6, 12] {
        let p = hashtable::build_linear_probe("keys", 8192, rounds, "ht");
        let cp = Compiler::new(&cat).compile(&p).unwrap();
        g.bench_with_input(BenchmarkId::new("build_linear", rounds), &rounds, |b, _| {
            let exec = Executor::single_threaded();
            b.iter(|| exec.run(&cp, &cat).unwrap());
        });
    }
    g.finish();
}

fn bench_radix_sort(c: &mut Criterion) {
    let n = 1 << 16;
    let cat = catalog(n);
    let mut g = c.benchmark_group("radix_sort");
    g.sample_size(10);
    for (name, bits, passes) in [
        ("4bit_x3", 4u32, 3u32),
        ("6bit_x2", 6, 2),
        ("12bit_x1", 12, 1),
    ] {
        let p = compaction::radix_sort("input", bits, passes);
        let cp = Compiler::new(&cat).compile(&p).unwrap();
        g.bench_function(BenchmarkId::new("passes", name), |b| {
            let exec = Executor::single_threaded();
            b.iter(|| exec.run(&cp, &cat).unwrap());
        });
    }
    // std sort as the hand-written baseline.
    let vals: Vec<i64> = (0..n as i64).map(|i| (i * 2654435761) % 4096).collect();
    g.bench_function("std_sort_baseline", |b| {
        b.iter(|| {
            let mut v = vals.clone();
            v.sort_unstable();
            v
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fold_strategies,
    bench_vectorization_chunks,
    bench_hashtable_rounds,
    bench_radix_sort
);
criterion_main!(benches);
