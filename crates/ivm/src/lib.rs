//! # voodoo-ivm — DBSP-style incremental view maintenance
//!
//! The serving stack answers repeated dashboard-style queries; without this
//! crate every repeat recomputes from scratch. DBSP (Budiu et al., see
//! PAPERS.md) shows that lifting a dataflow to **Z-sets** — bags of rows
//! with signed `i64` multiplicities — turns each operator into a *delta*
//! operator, so a cached result refreshes in `O(changes)` instead of
//! `O(data)`. This crate applies that recipe to Voodoo's vector algebra:
//!
//! - [`ZBatch`] ([`zset`]) is the delta representation: row images plus
//!   multiplicities, layered on [`voodoo_core::StructuredVector`] for
//!   interchange with the backends and on
//!   [`voodoo_storage::RowDelta`] for interchange with change capture.
//! - [`differentiate`] ([`diff`]) compiles a source [`voodoo_core::Program`]
//!   into a delta program: `Load` is retargeted at a staged delta table,
//!   linear operators (filter masks, projections, elementwise maps) pass
//!   through unchanged, and global `SUM` folds become weight-multiplied
//!   folds. Operators with no delta rule make it return `None` — the
//!   caller falls back to a (counted) full recompute.
//! - [`MaintainedView`] ([`view`]) keeps a view's *arranged state* — join
//!   index per side, per-group aggregate entries with value histograms for
//!   `MIN`/`MAX` under retraction — and refreshes it from captured
//!   [`voodoo_storage::RowDelta`]s, executing the differentiated stage
//!   programs through a caller-supplied executor (any Voodoo backend).
//!
//! The correctness contract is crisp and the test suites hold it: after
//! any mutation sequence, an incrementally maintained view is bit-identical
//! to a fresh full recompute of the same definition.

#![warn(missing_docs)]

pub mod diff;
pub mod view;
pub mod zset;

pub use diff::{differentiate, DeltaProgram, WEIGHT_COL};
pub use view::{
    AggDef, AggFn, AggSpec, JoinDef, MaintainedView, Pred, Refresh, RefreshKind, SExpr, Source,
    ViewDef,
};
pub use zset::ZBatch;
