//! # voodoo-storage — MonetDB-style columnar storage substrate
//!
//! The paper integrates Voodoo into MonetDB, "effectively reduc\[ing\] its
//! role to data loading and query parsing" (§4). This crate is that reduced
//! role: a binary, column-wise catalog with **dictionary encoding for
//! strings** (exactly MonetDB's string storage the paper reuses), per-column
//! **min/max metadata** (which the Voodoo planner "aggressively exploits" to
//! size identity-hashed tables, §5.2) and declared **foreign-key
//! constraints**.
//!
//! Tables are flat collections of named columns; loading a table as a
//! Voodoo [`voodoo_core::StructuredVector`] exposes each column as a
//! `.name` attribute. Physically a table is an immutable base plus
//! `Arc`-shared sealed append [`Segment`]s, so publishing an appended
//! batch to concurrent readers is O(batch), never O(rows resident) —
//! see the [`catalog`] module docs for the write path and compaction
//! rules.
//!
//! [`partition`] adds the morsel layer: a [`Partitioning`] slices a
//! table's aligned columns into `P` contiguous extents — what the
//! compiled executor fans statements across for intra-statement
//! parallelism (per domain, via [`Partitioning::for_len`]); base-table
//! layouts are additionally cached per `(table, table-version, P)`
//! behind [`Catalog::table_partitioning`]. Versioning is per table
//! ([`Catalog::table_version`] / [`Catalog::table_state`]), so mutating
//! one table invalidates only its own plans and layouts.

pub mod catalog;
pub mod partition;
pub mod persist;

pub use catalog::{
    Catalog, CatalogSnapshot, ChangeEntry, ColumnStats, RowDelta, Segment, Table, TableChange,
    TableColumn, MAX_CHANGE_LOG, MAX_TABLE_SEGMENTS,
};
pub use partition::{Morsel, PartitionCache, Partitioning, DEFAULT_STEAL_GRAIN, MORSEL_ALIGN};
