//! Control-vector run metadata (paper §3.1.1, "Maintaining Run Metadata").
//!
//! Shape-generated attributes are never materialized; instead the compiler
//! keeps a closed form per attribute:
//!
//! ```text
//! v[i] = from + ⌊i · step⌋ mod cap
//! ```
//!
//! with a *rational* step (`step_num / step_den`). The paper's two tuning
//! moves map to metadata algebra:
//!
//! * `Divide(range, x)` divides the step by `x` — turning per-tuple ids into
//!   runs of `x` equal values (multicore partitions, Figure 3),
//! * `Modulo(range, x)` sets `cap = x` — turning ids into circular lane ids
//!   (SIMD lanes, Figure 4).
//!
//! From the metadata the compiler derives each fold's **Intent** (sequential
//! iterations per work item = run length) and **Extent** (parallel work
//! items = number of runs).

use crate::scalar::ScalarValue;

/// Closed-form description of a generated (control) attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMeta {
    /// Additive offset.
    pub from: i64,
    /// Step numerator.
    pub step_num: i64,
    /// Step denominator (> 0).
    pub step_den: i64,
    /// Optional modulo cap.
    pub cap: Option<i64>,
}

impl RunMeta {
    /// Metadata of `Range(from, _, step)`.
    pub fn range(from: i64, step: i64) -> RunMeta {
        RunMeta {
            from,
            step_num: step,
            step_den: 1,
            cap: None,
        }
    }

    /// Metadata of a constant attribute.
    pub fn constant(value: i64) -> RunMeta {
        RunMeta {
            from: value,
            step_num: 0,
            step_den: 1,
            cap: None,
        }
    }

    /// Evaluate the closed form at position `i`.
    pub fn value_at(&self, i: usize) -> i64 {
        let scaled = (i as i64)
            .wrapping_mul(self.step_num)
            .div_euclid(self.step_den);
        let v = match self.cap {
            Some(c) if c > 0 => scaled.rem_euclid(c),
            _ => scaled,
        };
        self.from.wrapping_add(v)
    }

    /// Metadata after integer-dividing the attribute by `x` (x > 0).
    ///
    /// Only exact when the attribute is non-capped and starts at a multiple
    /// of `x`; otherwise returns `None` and the compiler falls back to
    /// dynamic run detection.
    pub fn divide(&self, x: i64) -> Option<RunMeta> {
        if x <= 0 || self.cap.is_some() || self.from % x != 0 {
            return None;
        }
        Some(RunMeta {
            from: self.from / x,
            step_num: self.step_num,
            step_den: self.step_den.checked_mul(x)?,
            cap: None,
        })
    }

    /// Metadata after taking the attribute modulo `x` (x > 0).
    pub fn modulo(&self, x: i64) -> Option<RunMeta> {
        if x <= 0 || self.cap.is_some() || self.from != 0 {
            return None;
        }
        Some(RunMeta {
            from: 0,
            step_num: self.step_num,
            step_den: self.step_den,
            cap: Some(x),
        })
    }

    /// Metadata after multiplying by `x`.
    pub fn multiply(&self, x: i64) -> Option<RunMeta> {
        if self.cap.is_some() {
            return None;
        }
        // Exact only when the step stays integral or the scale keeps the
        // floor distributive; we only claim the safe integral-step case.
        if self.step_den != 1 {
            return None;
        }
        Some(RunMeta {
            from: self.from.checked_mul(x)?,
            step_num: self.step_num.checked_mul(x)?,
            step_den: 1,
            cap: None,
        })
    }

    /// Metadata after adding a constant `x`.
    pub fn add(&self, x: i64) -> Option<RunMeta> {
        if self.cap.is_some() && x != 0 {
            // from shifts out of the modulo; still exact because `from` is
            // added after the mod in our closed form.
        }
        Some(RunMeta {
            from: self.from.checked_add(x)?,
            ..*self
        })
    }

    /// Length of each run of equal values, when statically known.
    ///
    /// * step 0 → one infinite run (`None` here; callers treat the whole
    ///   vector as a single run),
    /// * step ≥ 1 → runs of length 1,
    /// * step = 1/d (num 1) → runs of exactly `d`,
    /// * otherwise → unknown (`None`), dynamic detection needed.
    pub fn run_length(&self) -> Option<i64> {
        if self.step_num == 0 {
            return None; // single run, caller uses vector length
        }
        if self.step_num >= self.step_den {
            // Values advance at least every step: with an integral step the
            // runs have length 1 (cap only makes values cycle, runs stay 1
            // as long as cap > 1).
            if self.step_num % self.step_den == 0 {
                if self.cap == Some(1) {
                    return None; // everything collapses to one value
                }
                return Some(1);
            }
            return None;
        }
        // Fractional step < 1: exact run length only for numerator 1.
        if self.step_num == 1 {
            Some(self.step_den)
        } else {
            None
        }
    }

    /// Whether every slot holds the same value (a single global run).
    pub fn is_single_run(&self) -> bool {
        self.step_num == 0 || self.cap == Some(1)
    }

    /// Number of runs when folding a vector of `len` slots on this attribute.
    pub fn run_count(&self, len: usize) -> Option<usize> {
        if len == 0 {
            return Some(0);
        }
        if self.is_single_run() {
            return Some(1);
        }
        self.run_length()
            .map(|rl| (len as i64 + rl - 1).div_euclid(rl) as usize)
    }

    /// Materialize the closed form (used by differential tests and the
    /// interpreter when a control vector *is* observed).
    pub fn materialize(&self, len: usize) -> Vec<i64> {
        (0..len).map(|i| self.value_at(i)).collect()
    }

    /// The closed form at `i`, as a scalar (always `I64`).
    pub fn scalar_at(&self, i: usize) -> ScalarValue {
        ScalarValue::I64(self.value_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_closed_form() {
        let m = RunMeta::range(5, 2);
        assert_eq!(m.materialize(4), vec![5, 7, 9, 11]);
        assert_eq!(m.run_length(), Some(1));
    }

    #[test]
    fn divide_makes_partitions() {
        // Figure 3: ids / partitionSize → runs of partitionSize.
        let ids = RunMeta::range(0, 1);
        let parts = ids.divide(4).unwrap();
        assert_eq!(parts.materialize(10), vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
        assert_eq!(parts.run_length(), Some(4));
        assert_eq!(parts.run_count(10), Some(3));
    }

    #[test]
    fn modulo_makes_lanes() {
        // Figure 4: ids % laneCount → circular lane ids.
        let ids = RunMeta::range(0, 1);
        let lanes = ids.modulo(2).unwrap();
        assert_eq!(lanes.materialize(6), vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(lanes.run_length(), Some(1));
    }

    #[test]
    fn constant_is_single_run() {
        let c = RunMeta::constant(0);
        assert!(c.is_single_run());
        assert_eq!(c.run_count(100), Some(1));
        assert_eq!(c.materialize(3), vec![0, 0, 0]);
    }

    #[test]
    fn nested_divide() {
        let m = RunMeta::range(0, 1).divide(4).unwrap().divide(2).unwrap();
        assert_eq!(m.run_length(), Some(8));
        assert_eq!(m.value_at(15), 1);
    }

    #[test]
    fn divide_rejects_inexact() {
        let capped = RunMeta::range(0, 1).modulo(3).unwrap();
        assert!(capped.divide(2).is_none());
        let offset = RunMeta::range(1, 1);
        assert!(offset.divide(2).is_none());
    }

    #[test]
    fn closed_form_matches_naive() {
        let m = RunMeta {
            from: 3,
            step_num: 1,
            step_den: 4,
            cap: Some(5),
        };
        for i in 0..100usize {
            let naive = 3 + ((i as i64) / 4).rem_euclid(5);
            assert_eq!(m.value_at(i), naive, "at {i}");
        }
    }

    #[test]
    fn multiply_and_add() {
        let m = RunMeta::range(1, 2).multiply(3).unwrap().add(4).unwrap();
        assert_eq!(m.materialize(3), vec![7, 13, 19]);
    }
}
