//! Sharded multi-engine serving: N [`Engine`]s behind one handle,
//! routed by table, bit-identical to a single engine.
//!
//! "One process, one engine" was the stack's last scaling wall. This
//! module generalizes the serving surface — statements, batches, views,
//! quotas, deadlines, fault injection — to an N-engine topology: a
//! [`ShardedEngine`] owns one [`Engine`] per shard (each behind its own
//! admission-controlled [`crate::ServerHandle`], labeled `shard-<i>`)
//! plus a [`Router`] assigning every table to exactly one shard (FNV-1a
//! hash over the table name by default; explicit range or manual
//! assignment supported).
//!
//! The paper's portability thesis — one algebra, many targets — extends
//! to many *engines*: a statement does not care whether its tables live
//! on one shard or five, just as it does not care which backend runs it.
//!
//! # Routing
//!
//! A statement's table footprint decides its route, computed statically
//! before any queue slot is spent:
//!
//! * raw programs — `voodoo_verify`'s effects pass
//!   ([`voodoo_verify::read_set`]), the same exact read set plan-cache
//!   freshness keys on;
//! * TPC-H — [`crate::queries::query_tables`], the planner-side footprint
//!   (host-read dictionaries and auxiliary flag tables included);
//! * SQL — the parsed statement's single table;
//! * view reads — the registry built by [`ShardedEngine::create_view`].
//!
//! A footprint owned by **one** shard routes the statement straight
//! through that shard's serve queue. A **cross-shard** footprint runs by
//! scatter-gather: one *probe* statement per owning shard — a program
//! that loads exactly the needed tables, pinned to that shard's
//! snapshot — fans through the shards' serve queues (admission, quota,
//! deadline, fault injection and metrics all apply per sub-request),
//! then the `Arc`-shared tables are gathered zero-copy from the pinned
//! snapshots into a combined catalog and the original statement executes
//! on the coordinator engine against that pin. Gathered tables keep
//! their per-shard versions ([`voodoo_storage::Catalog::
//! insert_table_pinned`]), so the coordinator's plan cache stays hot
//! across repeated cross-shard executions of the same statement.
//!
//! Because the gathered catalog holds exactly the same table contents a
//! single engine would read, sharded results are **bit-identical** to
//! the single-engine oracle — invariant 10, pinned by `tests/shard.rs`
//! across 1/2/4-shard topologies, all three backends, views, mid-run
//! appends and random table→shard assignments.
//!
//! # Partial failure
//!
//! Faults stay shard-local: a `voodoo-faults` `FaultPlan` wrapped around
//! one shard's backend (via [`ShardedEngine::shard_engine`] +
//! [`Engine::backend`] / [`Engine::register`]) fails only the statements
//! whose footprint touches that shard. Errors carry their origin — the
//! serve layer prefixes `[shard-<i>/session-<n>]`, and [`ShardError`]
//! names the failing shard — so a partial failure is debuggable from the
//! error alone.
//!
//! ```
//! use voodoo_relational::shard::ShardedEngine;
//! use voodoo_relational::{Session, StatementSpec};
//! use voodoo_tpch::queries::Query;
//!
//! // The same data behind four engines (tables hash-routed to shards)
//! // and behind one engine (the oracle).
//! let sharded = ShardedEngine::tpch(0.002, 4);
//! let oracle = Session::tpch(0.002);
//!
//! let session = sharded.session(1);
//! // Q6 reads one table: routed straight to its owner's queue.
//! // Q12 reads lineitem + orders: scatter-gather across their owners.
//! for q in [Query::Q6, Query::Q12] {
//!     let got = session.run(StatementSpec::tpch(q)).unwrap();
//!     let want = oracle.query(q).run().unwrap();
//!     assert_eq!(got.rows(), want.rows(), "sharded ≡ single-engine");
//! }
//! sharded.shutdown();
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use voodoo_core::{Diagnostic, Program, VoodooError};
use voodoo_storage::{Catalog, CatalogSnapshot};
use voodoo_tpch::queries::QueryResult;

use crate::engine::{Engine, EngineMetrics, SpecKind, StatementSpec};
use crate::overload::Quota;
use crate::serve::{
    ServeConfig, ServeError, ServeSession, ServerHandle, SessionServeStats, SubmitError,
};
use crate::session::StatementOutput;
use crate::views::ViewDef;
use crate::{queries, sql};

// ---------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------

/// How tables map to shards. Every policy is **deterministic and pure**
/// in the table name: the same name always routes to the same shard, on
/// every process, so a statement's shard set can be planned statically.
#[derive(Debug, Clone, Default)]
pub enum Router {
    /// FNV-1a hash of the table name modulo the shard count (the
    /// default). Stable across processes — unlike `std`'s randomly
    /// seeded `DefaultHasher`.
    #[default]
    Hash,
    /// Lexicographic ranges: a table routes to the first shard `i` whose
    /// boundary exceeds its name (`name < boundary[i]`); names at or
    /// past the last boundary route to the last shard. `k` boundaries
    /// split a `k+1`-shard topology.
    Range(Vec<String>),
    /// Explicit table→shard assignment; unlisted tables fall back to
    /// [`Router::Hash`]. Out-of-range shard indices clamp to the last
    /// shard.
    Manual(HashMap<String, usize>),
}

/// FNV-1a over the table name: deterministic across processes and runs.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Router {
    /// The shard owning `table` in an `n`-shard topology.
    pub fn route(&self, table: &str, n: usize) -> usize {
        let n = n.max(1);
        match self {
            Router::Hash => (fnv1a(table) % n as u64) as usize,
            Router::Range(bounds) => bounds
                .iter()
                .position(|b| table < b.as_str())
                .unwrap_or(bounds.len())
                .min(n - 1),
            Router::Manual(map) => match map.get(table) {
                Some(&s) => s.min(n - 1),
                None => (fnv1a(table) % n as u64) as usize,
            },
        }
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a sharded statement failed — always naming the failing component
/// (`shard-<i>` or `coordinator`), so multi-shard failures are
/// debuggable from the error alone.
#[derive(Debug)]
pub enum ShardError {
    /// Admission was refused at one component's serve queue.
    Submit {
        /// Which component refused (`shard-<i>` / `coordinator`).
        origin: String,
        /// The shard index, when a shard refused (`None`: coordinator).
        shard: Option<usize>,
        /// The underlying admission refusal.
        err: SubmitError,
    },
    /// An admitted statement (or scatter probe) failed at one component.
    Serve {
        /// Which component failed (`shard-<i>` / `coordinator`).
        origin: String,
        /// The shard index, when a shard failed (`None`: coordinator).
        shard: Option<usize>,
        /// The underlying execution failure.
        err: ServeError,
    },
    /// The statement could not be routed at all (e.g. a view definition
    /// whose dependencies span shards).
    Routing(String),
}

impl ShardError {
    /// The shard the failure is attributed to, if any (`None` for
    /// coordinator failures and routing errors).
    pub fn shard(&self) -> Option<usize> {
        match self {
            ShardError::Submit { shard, .. } | ShardError::Serve { shard, .. } => *shard,
            ShardError::Routing(_) => None,
        }
    }

    /// Collapse into the engine-wide error type.
    pub fn into_engine_error(self) -> VoodooError {
        match self {
            ShardError::Submit { origin, err, .. } => {
                VoodooError::Backend(format!("admission refused at {origin}: {err}"))
            }
            ShardError::Serve { err, .. } => err.into_engine_error(),
            ShardError::Routing(msg) => VoodooError::Backend(msg),
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Submit { origin, err, .. } => {
                write!(f, "admission refused at {origin}: {err}")
            }
            ShardError::Serve { origin, err, .. } => write!(f, "{origin} failed: {err}"),
            ShardError::Routing(msg) => write!(f, "routing: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Serve { err, .. } => Some(err),
            ShardError::Submit { err, .. } => Some(err),
            ShardError::Routing(_) => None,
        }
    }
}

// ---------------------------------------------------------------------
// Core state
// ---------------------------------------------------------------------

/// Where a statement executes.
enum Route {
    /// Its whole footprint lives on one shard: straight through that
    /// shard's queue.
    Shard(usize),
    /// No catalog footprint (pure programs, statements whose frontend
    /// error reproduces anywhere): the coordinator serves it.
    Coordinator,
    /// The footprint spans shards: scatter probes, gather, execute on
    /// the coordinator against the gathered pin.
    Scatter(Vec<String>),
}

struct ShardCore {
    engines: Vec<Arc<Engine>>,
    servers: Vec<ServerHandle>,
    coordinator: Arc<Engine>,
    coord_server: ServerHandle,
    router: Router,
    /// Table → owning shard for every table present at construction;
    /// later names fall back to the router (pure in the name, so the
    /// fallback is just as deterministic).
    assignment: HashMap<String, usize>,
    /// View name → the shard that maintains it.
    views: Mutex<HashMap<String, usize>>,
}

impl ShardCore {
    fn shard_count(&self) -> usize {
        self.engines.len()
    }

    fn owner(&self, table: &str) -> usize {
        match self.assignment.get(table) {
            Some(&s) => s,
            None => self.router.route(table, self.shard_count()),
        }
    }

    /// Group a footprint by owning shard, preserving sorted table order.
    fn by_shard(&self, tables: &[String]) -> BTreeMap<usize, Vec<String>> {
        let mut grouped: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for t in tables {
            grouped.entry(self.owner(t)).or_default().push(t.clone());
        }
        grouped
    }

    fn route_spec(&self, spec: &StatementSpec) -> Route {
        let tables: Vec<String> = match &spec.kind {
            SpecKind::Program(p) => voodoo_verify::read_set(p),
            SpecKind::Tpch(q) => queries::query_tables(*q)
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            // The SQL subset is single-table; a parse error reproduces
            // identically on the (empty) coordinator, so the client sees
            // the same failure a single engine reports.
            SpecKind::Sql(text) => match sql::parse(text) {
                Ok(q) => vec![q.table],
                Err(_) => return Route::Coordinator,
            },
            // Views are maintained whole on their owning shard; an
            // unknown view fails on the coordinator with the same
            // "unknown view" error a single engine reports.
            SpecKind::View(name) => {
                let views = self.views.lock().unwrap_or_else(|e| e.into_inner());
                return match views.get(name.as_str()) {
                    Some(&s) => Route::Shard(s),
                    None => Route::Coordinator,
                };
            }
        };
        if tables.is_empty() {
            return Route::Coordinator;
        }
        let grouped = self.by_shard(&tables);
        if grouped.len() == 1 {
            Route::Shard(*grouped.keys().next().expect("non-empty"))
        } else {
            Route::Scatter(tables)
        }
    }

    fn view_shard(&self, name: &str) -> Option<usize> {
        self.views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .copied()
    }
}

// ---------------------------------------------------------------------
// ShardedEngine
// ---------------------------------------------------------------------

/// Per-shard and aggregate serving counters for a [`ShardedEngine`].
///
/// The aggregate is the **exact sum** of every per-shard counter plus
/// the coordinator's — each sub-request lands in exactly one component's
/// metrics, so nothing double-counts and nothing is lost (pinned by the
/// `tests/shard.rs` proptest). Latency quantiles combine as the max over
/// components (see [`EngineMetrics::accumulate`]).
#[derive(Debug, Clone)]
pub struct ShardedMetrics {
    /// One snapshot per shard, in shard order.
    pub per_shard: Vec<EngineMetrics>,
    /// The coordinator engine (cross-shard merge executions and pure
    /// statements land here).
    pub coordinator: EngineMetrics,
    /// Exact sum of `per_shard` and `coordinator`.
    pub aggregate: EngineMetrics,
}

/// N engines behind one handle: tables are routed to shards, statements
/// to the shard(s) owning their footprint, and results stay bit-identical
/// to a single engine over the same data. See the [module docs](self)
/// for the routing and scatter-gather contract.
///
/// Cheap to clone (`Arc` inside). [`ShardedEngine::shutdown`] (or drop)
/// drains every shard's serve queue.
#[derive(Clone)]
pub struct ShardedEngine {
    core: Arc<ShardCore>,
    /// Backs the engine-level [`ShardedEngine::run`] helpers, like a
    /// `ServerHandle`'s built-in session 0.
    default_session: ShardedSession,
}

impl ShardedEngine {
    /// Split `catalog` across `shards` engines by `router` and put a
    /// serving front door (default [`ServeConfig`], labeled `shard-<i>`)
    /// over each, plus a coordinator engine for cross-shard merges.
    ///
    /// If the catalog holds TPC-H tables, the auxiliary dictionary-flag
    /// tables ([`crate::prepare()`]) are staged *before* splitting, so
    /// they are routed (and owned) like any other table.
    pub fn new(catalog: Catalog, shards: usize, router: Router) -> ShardedEngine {
        ShardedEngine::with_config(catalog, shards, router, ServeConfig::default())
    }

    /// [`ShardedEngine::new`] with an explicit per-shard serving
    /// configuration (the label is overridden per shard).
    pub fn with_config(
        mut catalog: Catalog,
        shards: usize,
        router: Router,
        config: ServeConfig,
    ) -> ShardedEngine {
        let n = shards.max(1);
        if catalog.table("part").is_some() && catalog.table("lineitem").is_some() {
            crate::prepare(&mut catalog);
        }
        let mut names: Vec<String> = catalog
            .table_names()
            .into_iter()
            .map(|s| s.to_string())
            .collect();
        names.sort_unstable();
        let mut assignment = HashMap::new();
        let mut split: Vec<Catalog> = (0..n).map(|_| Catalog::in_memory()).collect();
        for name in names {
            let s = router.route(&name, n);
            let table = catalog.table(&name).expect("listed table").clone();
            // A fresh per-shard version history: tables sit behind Arcs,
            // so the split shares every buffer with the source catalog.
            split[s].insert_table(table);
            assignment.insert(name, s);
        }
        // Engine::new re-stages the aux tables on any shard that happens
        // to own both `part` and `lineitem`; those copies are built from
        // the same inputs (idempotent), and reads still route to the
        // assigned owner, so they are at worst dead weight.
        let engines: Vec<Arc<Engine>> = split
            .into_iter()
            .map(|cat| Arc::new(Engine::new(cat)))
            .collect();
        let servers: Vec<ServerHandle> = engines
            .iter()
            .enumerate()
            .map(|(i, e)| e.serve(config.clone().with_label(format!("shard-{i}"))))
            .collect();
        let coordinator = Arc::new(Engine::new(Catalog::in_memory()));
        let coord_server = coordinator.serve(config.clone().with_label("coordinator"));
        let core = Arc::new(ShardCore {
            engines,
            servers,
            coordinator,
            coord_server,
            router,
            assignment,
            views: Mutex::new(HashMap::new()),
        });
        let default_session = ShardedSession::open(&core, 1, None);
        ShardedEngine {
            core,
            default_session,
        }
    }

    /// Generate TPC-H at the given scale factor and shard it with the
    /// default hash router.
    pub fn tpch(sf: f64, shards: usize) -> ShardedEngine {
        ShardedEngine::new(voodoo_tpch::generate(sf), shards, Router::Hash)
    }

    /// Number of shards in this topology (the coordinator not included).
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// The engine behind shard `i` — the seam fault-injection harnesses
    /// use: fetch a backend ([`Engine::backend`]), wrap it in a
    /// `voodoo-faults` plan, [`Engine::register`] it back, and only the
    /// statements touching this shard see the faults.
    pub fn shard_engine(&self, i: usize) -> &Arc<Engine> {
        &self.core.engines[i]
    }

    /// The coordinator engine (cross-shard merges execute here).
    pub fn coordinator_engine(&self) -> &Arc<Engine> {
        &self.core.coordinator
    }

    /// The shard owning `table` under this topology's router.
    pub fn table_shard(&self, table: &str) -> usize {
        self.core.owner(table)
    }

    /// Open a weighted session spanning every shard: one serve session
    /// per shard plus one on the coordinator, all at `weight`.
    pub fn session(&self, weight: u32) -> ShardedSession {
        ShardedSession::open(&self.core, weight, None)
    }

    /// [`ShardedEngine::session`] with a service-time quota. The quota
    /// is **per component** (each shard's session gets its own bucket of
    /// `quota.burst` seconds refilled at `quota.rate`): service time is
    /// observed where it is spent, so a tenant hammering one shard runs
    /// that bucket dry without throttling its traffic elsewhere.
    pub fn session_with_quota(&self, weight: u32, quota: Quota) -> ShardedSession {
        ShardedSession::open(&self.core, weight, Some(quota))
    }

    /// Run one statement through the default session (blocking
    /// admission). See [`ShardedSession::run`].
    pub fn run(&self, spec: StatementSpec) -> Result<StatementOutput, ShardError> {
        self.default_session.run(spec)
    }

    /// [`ShardedEngine::run`] with a propagated deadline. See
    /// [`ShardedSession::run_deadline`].
    pub fn run_deadline(
        &self,
        spec: StatementSpec,
        deadline: Instant,
    ) -> Result<StatementOutput, ShardError> {
        self.default_session.run_deadline(spec, deadline)
    }

    /// Append rows to a table on its owning shard (the same
    /// `O(batch + #tables)` publication as [`Engine::append_rows`]; no
    /// other shard is touched). Returns `false` for an unknown table.
    pub fn append_rows(&self, table: &str, rows: &[Vec<i64>]) -> bool {
        self.core.engines[self.core.owner(table)].append_rows(table, rows)
    }

    /// Apply a catalog mutation on `table`'s owning shard (in-place
    /// updates, deletes — anything [`Engine::mutate_catalog`] can do).
    /// The closure sees the owning shard's whole catalog; mutations to
    /// tables owned elsewhere would diverge from the topology's routing,
    /// so keep it to `table`.
    pub fn mutate_table<T>(&self, table: &str, f: impl FnOnce(&mut Catalog) -> T) -> T {
        self.core.engines[self.core.owner(table)].mutate_catalog(f)
    }

    /// Register a materialized view over a SQL statement on the shard
    /// owning its table, and record the name in the routing registry so
    /// [`StatementSpec::view`] reads reach it. See [`Engine::create_view`].
    pub fn create_view(&self, name: &str, stmt: &str) -> Result<(), ShardError> {
        let parsed = sql::parse(stmt).map_err(coord_engine_err)?;
        let shard = self.core.owner(&parsed.table);
        self.core.engines[shard]
            .create_view(name, stmt)
            .map_err(|e| shard_engine_err(shard, e))?;
        self.core
            .views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), shard);
        Ok(())
    }

    /// Register a view from an explicit [`ViewDef`]. Every dependency
    /// (source table, join right side) must be co-located on one shard;
    /// a definition spanning shards is refused with
    /// [`ShardError::Routing`].
    pub fn create_view_def(&self, name: &str, def: ViewDef) -> Result<(), ShardError> {
        let mut deps = vec![def.source.table.clone()];
        if let Some(j) = &def.join {
            deps.push(j.right.table.clone());
        }
        let grouped = self.core.by_shard(&deps);
        if grouped.len() != 1 {
            return Err(ShardError::Routing(format!(
                "view {name:?} depends on tables spanning shards {:?}; \
                 co-locate them (e.g. Router::Manual) first",
                grouped.keys().collect::<Vec<_>>()
            )));
        }
        let shard = *grouped.keys().next().expect("non-empty");
        self.core.engines[shard]
            .create_view_def(name, def)
            .map_err(|e| shard_engine_err(shard, e))?;
        self.core
            .views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), shard);
        Ok(())
    }

    /// Read a materialized view through its owning shard's serve queue.
    pub fn read_view(&self, name: &str) -> Result<QueryResult, ShardError> {
        Ok(self.run(StatementSpec::view(name))?.into_rows())
    }

    /// [`ShardedEngine::read_view`] with the refresh executed on a named
    /// backend.
    pub fn read_view_on(&self, name: &str, backend: &str) -> Result<QueryResult, ShardError> {
        Ok(self.run(StatementSpec::view(name).on(backend))?.into_rows())
    }

    /// Unregister a view from its owning shard; returns whether it
    /// existed.
    pub fn drop_view(&self, name: &str) -> bool {
        let shard = {
            let mut views = self.core.views.lock().unwrap_or_else(|e| e.into_inner());
            views.remove(name)
        };
        match shard {
            Some(s) => self.core.engines[s].drop_view(name),
            None => false,
        }
    }

    /// Registered view names across every shard, sorted.
    pub fn view_names(&self) -> Vec<String> {
        let views = self.core.views.lock().unwrap_or_else(|e| e.into_inner());
        let mut names: Vec<String> = views.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The shard maintaining a registered view, if any.
    pub fn view_shard(&self, name: &str) -> Option<usize> {
        self.core.view_shard(name)
    }

    /// Static diagnostics for a spec against the shard(s) that would
    /// serve it — single-shard specs verify on their owner, cross-shard
    /// specs on every owning shard (each sees its own tables).
    pub fn verify(&self, spec: &StatementSpec) -> Vec<Diagnostic> {
        match self.core.route_spec(spec) {
            Route::Shard(s) => self.core.engines[s].verify_spec(spec),
            Route::Coordinator => self.core.coordinator.verify_spec(spec),
            Route::Scatter(tables) => {
                // Verify each shard's probe footprint where the tables
                // actually live; the merged statement itself is verified
                // by the coordinator's prepare at execution time.
                let mut diags = Vec::new();
                for (shard, ts) in self.core.by_shard(&tables) {
                    let mut p = Program::new();
                    for t in &ts {
                        let v = p.load(t);
                        p.ret(v);
                    }
                    diags.extend(self.core.engines[shard].verify_spec(&StatementSpec::program(p)));
                }
                diags
            }
        }
    }

    /// Per-shard, coordinator and exact-sum aggregate serving counters.
    pub fn metrics(&self) -> ShardedMetrics {
        let per_shard: Vec<EngineMetrics> = self.core.engines.iter().map(|e| e.metrics()).collect();
        let coordinator = self.core.coordinator.metrics();
        let mut aggregate = EngineMetrics::default();
        for m in &per_shard {
            aggregate.accumulate(m);
        }
        aggregate.accumulate(&coordinator);
        ShardedMetrics {
            per_shard,
            coordinator,
            aggregate,
        }
    }

    /// Stop accepting work on every shard and the coordinator, drain
    /// their queues, and join the workers. Idempotent (dropping the last
    /// handle does the same).
    pub fn shutdown(&self) {
        for s in &self.core.servers {
            s.shutdown();
        }
        self.core.coord_server.shutdown();
    }
}

fn shard_engine_err(shard: usize, e: VoodooError) -> ShardError {
    ShardError::Serve {
        origin: format!("shard-{shard}"),
        shard: Some(shard),
        err: ServeError::Engine(e),
    }
}

fn coord_engine_err(e: VoodooError) -> ShardError {
    ShardError::Serve {
        origin: "coordinator".to_string(),
        shard: None,
        err: ServeError::Engine(e),
    }
}

// ---------------------------------------------------------------------
// ShardedSession
// ---------------------------------------------------------------------

/// A weighted serving session spanning a [`ShardedEngine`]'s topology:
/// one [`ServeSession`] per shard plus one on the coordinator, behind
/// the same synchronous `run` surface a single-engine
/// [`crate::Session`] offers. Cheap to clone; safe to share across
/// threads.
///
/// Deadlines propagate into every sub-request ([`ShardedSession::
/// run_deadline`]): a scatter probe still queued when the deadline
/// expires is dropped at dequeue on its shard, exactly like a
/// single-engine statement. Quotas (from [`ShardedEngine::
/// session_with_quota`]) are per component — see there.
#[derive(Clone)]
pub struct ShardedSession {
    core: Arc<ShardCore>,
    shards: Vec<ServeSession>,
    coord: ServeSession,
}

/// Where a routed statement is submitted.
enum Target {
    Shard(usize),
    Coordinator,
}

impl ShardedSession {
    fn open(core: &Arc<ShardCore>, weight: u32, quota: Option<Quota>) -> ShardedSession {
        let open = |server: &ServerHandle| match quota {
            Some(q) => server.session_with_quota(weight, q),
            None => server.session(weight),
        };
        ShardedSession {
            shards: core.servers.iter().map(open).collect(),
            coord: open(&core.coord_server),
            core: Arc::clone(core),
        }
    }

    /// Execute one statement: route by footprint, scatter-gather when it
    /// spans shards, block for admission and completion. Bit-identical
    /// to running the same spec on a single engine over the same data.
    pub fn run(&self, spec: StatementSpec) -> Result<StatementOutput, ShardError> {
        self.run_opt(spec, None)
    }

    /// [`ShardedSession::run`] with a completion deadline propagated
    /// into every sub-request: admission waits give up at the deadline
    /// ([`SubmitError::Timeout`]), and admitted sub-requests whose
    /// deadline expires while queued are dropped at dequeue on their
    /// shard ([`ServeError::Timeout`]) instead of executing late.
    pub fn run_deadline(
        &self,
        spec: StatementSpec,
        deadline: Instant,
    ) -> Result<StatementOutput, ShardError> {
        self.run_opt(spec, Some(deadline))
    }

    fn run_opt(
        &self,
        spec: StatementSpec,
        deadline: Option<Instant>,
    ) -> Result<StatementOutput, ShardError> {
        match self.core.route_spec(&spec) {
            Route::Shard(s) => self.submit_and_wait(Target::Shard(s), spec, deadline),
            Route::Coordinator => self.submit_and_wait(Target::Coordinator, spec, deadline),
            Route::Scatter(tables) => self.scatter_gather(spec, &tables, deadline),
        }
    }

    fn submit_and_wait(
        &self,
        target: Target,
        spec: StatementSpec,
        deadline: Option<Instant>,
    ) -> Result<StatementOutput, ShardError> {
        let (session, origin, shard) = match target {
            Target::Shard(s) => (&self.shards[s], format!("shard-{s}"), Some(s)),
            Target::Coordinator => (&self.coord, "coordinator".to_string(), None),
        };
        let receipt = session
            .submit_wait(spec, deadline)
            .map_err(|err| ShardError::Submit {
                origin: origin.clone(),
                shard,
                err,
            })?;
        let result = match deadline {
            Some(d) => receipt.wait_deadline(d),
            None => receipt.wait(),
        };
        result.map_err(|err| ShardError::Serve { origin, shard, err })
    }

    /// The cross-shard path. One probe statement per owning shard — a
    /// program loading exactly that shard's share of the footprint,
    /// pinned to the shard's current snapshot — goes through the shard's
    /// serve queue (admission, quota, deadline, faults and metrics all
    /// apply), then the probe-pinned tables are gathered zero-copy into
    /// a combined catalog and the original statement executes on the
    /// coordinator against that pin. Table versions survive the gather
    /// ([`Catalog::insert_table_pinned`]), so the coordinator's plan
    /// cache stays hot while no involved shard has mutated.
    fn scatter_gather(
        &self,
        spec: StatementSpec,
        tables: &[String],
        deadline: Option<Instant>,
    ) -> Result<StatementOutput, ShardError> {
        let grouped = self.core.by_shard(tables);
        // Scatter: submit every probe before waiting on any, so shards
        // execute their share concurrently.
        let mut probes = Vec::with_capacity(grouped.len());
        for (shard, ts) in &grouped {
            let snapshot = self.core.engines[*shard].snapshot();
            let mut p = Program::new();
            for t in ts {
                let v = p.load(t);
                p.ret(v);
            }
            let mut probe = StatementSpec::program(p).pinned_to(snapshot.clone());
            if let Some(b) = &spec.backend {
                probe = probe.on(b);
            }
            let receipt = self.shards[*shard]
                .submit_wait(probe, deadline)
                .map_err(|err| ShardError::Submit {
                    origin: format!("shard-{shard}"),
                    shard: Some(*shard),
                    err,
                })?;
            probes.push((*shard, snapshot, receipt));
        }
        // Gather: a failed probe attributes the whole statement to its
        // shard (partial-failure semantics: only statements touching a
        // faulted shard fail).
        let mut gathered = Catalog::in_memory();
        for (shard, snapshot, receipt) in probes {
            let result = match deadline {
                Some(d) => receipt.wait_deadline(d),
                None => receipt.wait(),
            };
            result.map_err(|err| ShardError::Serve {
                origin: format!("shard-{shard}"),
                shard: Some(shard),
                err,
            })?;
            for t in &grouped[&shard] {
                if let Some(table) = snapshot.table(t) {
                    let version = snapshot.table_version(t).unwrap_or(0);
                    gathered.insert_table_pinned(table.clone(), version);
                }
            }
        }
        // Merge: the original statement, against exactly the bytes a
        // single engine would have read.
        self.submit_and_wait(
            Target::Coordinator,
            spec.pinned_to(CatalogSnapshot::new(gathered)),
            deadline,
        )
    }

    /// Cumulative serving counters summed over every component session
    /// (each sub-request is counted by exactly one component).
    pub fn stats(&self) -> SessionServeStats {
        let mut total = SessionServeStats::default();
        for s in self.shards.iter().chain(std::iter::once(&self.coord)) {
            let st = s.stats();
            total.submitted += st.submitted;
            total.served += st.served;
            total.shed += st.shed;
            total.timed_out += st.timed_out;
            total.cache_hits += st.cache_hits;
            total.cache_misses += st.cache_misses;
        }
        total
    }

    /// Per-component serving counters, in shard order with the
    /// coordinator last.
    pub fn component_stats(&self) -> Vec<SessionServeStats> {
        self.shards
            .iter()
            .chain(std::iter::once(&self.coord))
            .map(|s| s.stats())
            .collect()
    }
}
