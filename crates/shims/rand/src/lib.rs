//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the (small) subset of the `rand 0.8` API the Voodoo
//! workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ (the same family `rand`'s `SmallRng` uses
//! on 64-bit platforms), seeded through SplitMix64 exactly like
//! `SeedableRng::seed_from_u64`. It is deterministic and high-quality, but —
//! like the real `SmallRng` — not cryptographically secure, and its streams
//! are not guaranteed to match the real crate's bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange: Copy {
    /// Sample uniformly from `[lo, hi)`.
    fn sample(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// The next representable value (used to desugar inclusive ranges).
    fn successor(self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`] (half-open and inclusive).
pub trait SampleBounds<T> {
    /// Decompose into `(lo, hi_exclusive)`.
    fn bounds(self) -> (T, T);
}

impl<T: SampleRange> SampleBounds<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end)
    }
}

impl<T: SampleRange> SampleBounds<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        (lo, hi.successor())
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping; span ≤ 2^64 here.
                let r = rng.next_u64() as u128;
                (lo as i128 + ((r * span) >> 64) as i128) as $t
            }
            fn successor(self) -> Self {
                self.checked_add(1).expect("inclusive range ends at type max")
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl SampleRange for u64 {
    fn sample(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        let span = (hi - lo) as u128;
        let r = rng.next_u64() as u128;
        lo + ((r * span) >> 64) as u64
    }
    fn successor(self) -> Self {
        self.checked_add(1)
            .expect("inclusive range ends at type max")
    }
}

impl SampleRange for f64 {
    fn sample(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn successor(self) -> Self {
        self
    }
}

/// The raw 64-bit source every RNG implements.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (the subset of `rand::Rng` used here).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T: SampleRange>(&mut self, range: impl SampleBounds<T>) -> T {
        let (lo, hi) = range.bounds();
        T::sample(lo, hi, self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A uniformly random value (`i64`/`u64`/`bool`/`f64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion, like
    /// the real crate).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small fast generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// The "standard" generator; same engine as [`SmallRng`] here.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..17i64);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn distribution_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 25];
        for _ in 0..2_000 {
            seen[rng.gen_range(0..25usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
