//! # voodoo-faults — deterministic fault injection for any backend
//!
//! The serve layer promises that every admitted statement terminates —
//! served, shed, timed out, or failed — and that a failure is scoped to
//! exactly one [`Receipt`](https://docs.rs/voodoo-relational). Those
//! promises are only worth something if they hold under faults, and
//! faults that appear "sometimes, under load" cannot be pinned by tests.
//! This crate makes them reproducible: a [`FaultPlan`] wraps any
//! registered [`Backend`] and injects a *scripted, seeded* schedule of
//! misbehavior at exact call indices:
//!
//! * **prepare errors** — `Backend::prepare` returns an injected
//!   [`VoodooError::Backend`] (exercises the plan cache's no-negative-
//!   caching path),
//! * **execute errors** — the prepared plan's `execute` fails,
//! * **panics** — `execute` panics (exercises serve-worker panic
//!   isolation),
//! * **pool poisoning** — `execute` fans tasks across the *current*
//!   morsel pool and panics inside one of them (exercises two-level
//!   panic isolation: pool task → statement → receipt),
//! * **latency spikes** — `execute` sleeps before delegating (exercises
//!   sojourn-based admission control and deadline propagation).
//!
//! Schedules are keyed by **call index** (the n-th `prepare` / n-th
//! `execute` across the wrapped backend, 0-based), so with a
//! single-worker server draining FIFO the failure sequence is exactly
//! reproducible; [`FaultPlan::seeded`] + [`FaultPlanBuilder::scatter_execute`]
//! derive the faulted indices from a seed, so two runs with one seed
//! inject the identical schedule and a different seed injects a
//! different one. Every injection is recorded ([`FaultPlan::log`]) so
//! tests can assert "every injected fault surfaced as exactly one
//! failed receipt" instead of "roughly the right number failed".
//!
//! A [`FaultPlan::on_execute`] hook runs an arbitrary closure before a
//! chosen call — the seam tests use to race catalog mutations against
//! in-flight statements at a deterministic point.
//!
//! ```
//! use std::sync::Arc;
//! use voodoo_backend::{Backend, InterpBackend};
//! use voodoo_core::Program;
//! use voodoo_faults::{Fault, FaultPlan};
//! use voodoo_storage::Catalog;
//!
//! let mut cat = Catalog::in_memory();
//! cat.put_i64_column("t", &[1, 2, 3]);
//!
//! // Fail the second execution; everything else passes through.
//! let plan = FaultPlan::fault_execute(1, Fault::Error);
//! let faulty = plan.wrap(Arc::new(InterpBackend::new()));
//!
//! let mut p = Program::new();
//! let t = p.load("t");
//! p.ret(t);
//! let prepared = faulty.prepare(&p, &cat).unwrap();
//! assert!(prepared.execute(&cat).is_ok());  // call 0
//! assert!(prepared.execute(&cat).is_err()); // call 1: injected
//! assert!(prepared.execute(&cat).is_ok());  // call 2: recovered
//! assert_eq!(plan.log().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use voodoo_backend::{Backend, ExecOutput, PlanProfile, PreparedPlan};
use voodoo_core::{Program, Result, VoodooError};
use voodoo_storage::Catalog;

/// One kind of injected misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Return an injected [`VoodooError::Backend`] instead of running.
    Error,
    /// Panic mid-call (the serve layer must isolate it to one receipt).
    Panic,
    /// Fan four trivial tasks across the current morsel pool and panic
    /// inside the third — the two-level isolation probe. The poisoned
    /// task re-raises on the statement's thread, so the wrapped call
    /// never runs and the statement fails like any panicking kernel.
    PoolPoison,
    /// Sleep for the given duration, then delegate normally. The call
    /// *succeeds*; only its latency is perturbed.
    Latency(Duration),
}

/// Which intercepted entry point a fault (or hook) attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Site {
    /// The n-th `Backend::prepare` call through the wrapper.
    Prepare,
    /// The n-th `PreparedPlan::execute` (or `profile`) call, counted
    /// across every plan the wrapper prepared.
    Execute,
}

/// One injection that actually happened: where, at which call index,
/// and what was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Entry point the fault fired at.
    pub site: Site,
    /// 0-based call index at that site.
    pub call: u64,
    /// The injected fault.
    pub fault: Fault,
}

type ExecuteHook = Box<dyn Fn(u64) + Send + Sync>;

#[derive(Default)]
struct Schedule {
    prepare: BTreeMap<u64, Fault>,
    execute: BTreeMap<u64, Fault>,
}

/// A deterministic fault schedule, shared by every plan the wrapped
/// backend prepares. Cheap to clone (`Arc` inside); the clone observes
/// the same counters and log.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<PlanState>,
}

struct PlanState {
    schedule: Schedule,
    /// Scripted closures keyed by execute-call index, run *before* the
    /// faulted/normal call — the catalog-race seam.
    hooks: Mutex<BTreeMap<u64, ExecuteHook>>,
    prepare_calls: AtomicU64,
    execute_calls: AtomicU64,
    log: Mutex<Vec<Injection>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("prepare_faults", &self.inner.schedule.prepare.len())
            .field("execute_faults", &self.inner.schedule.execute.len())
            .field("prepare_calls", &self.prepare_calls())
            .field("execute_calls", &self.execute_calls())
            .finish()
    }
}

/// Builder state before the plan is frozen into its shareable form.
#[derive(Debug, Default)]
pub struct FaultPlanBuilder {
    schedule: Schedule,
    rng: Option<SmallRng>,
}

impl std::fmt::Debug for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Schedule")
            .field("prepare", &self.prepare)
            .field("execute", &self.execute)
            .finish()
    }
}

impl FaultPlanBuilder {
    /// Inject `fault` at the n-th (0-based) `Backend::prepare` call.
    pub fn fault_prepare(mut self, nth: u64, fault: Fault) -> FaultPlanBuilder {
        self.schedule.prepare.insert(nth, fault);
        self
    }

    /// Inject `fault` at the n-th (0-based) execute/profile call.
    pub fn fault_execute(mut self, nth: u64, fault: Fault) -> FaultPlanBuilder {
        self.schedule.execute.insert(nth, fault);
        self
    }

    /// Inject `fault` at every execute/profile call in
    /// `[first, first + count)` — a contiguous outage window rather than
    /// a point fault. Sharded partial-failure harnesses use this to keep
    /// one shard's backend down for a whole phase of traffic while the
    /// other shards stay clean.
    pub fn fault_execute_range(mut self, first: u64, count: u64, fault: Fault) -> FaultPlanBuilder {
        for nth in first..first.saturating_add(count) {
            self.schedule.execute.insert(nth, fault);
        }
        self
    }

    /// Scatter `count` copies of `fault` over distinct execute-call
    /// indices in `[0, window)`, drawn from the seed given to
    /// [`FaultPlan::seeded`]. Panics if the builder was not seeded or
    /// the window cannot hold `count` distinct indices (a schedule that
    /// silently injects fewer faults than asked would let a test pass
    /// vacuously).
    pub fn scatter_execute(mut self, count: usize, window: u64, fault: Fault) -> FaultPlanBuilder {
        let rng = self
            .rng
            .as_mut()
            .expect("scatter_execute requires FaultPlan::seeded");
        assert!(
            (count as u64) <= window,
            "cannot place {count} distinct faults in a window of {window}"
        );
        let mut placed = 0;
        while placed < count {
            let idx = rng.gen_range(0..window);
            if let std::collections::btree_map::Entry::Vacant(e) = self.schedule.execute.entry(idx)
            {
                e.insert(fault);
                placed += 1;
            }
        }
        self
    }

    /// Freeze into the shareable plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(PlanState {
                schedule: self.schedule,
                hooks: Mutex::new(BTreeMap::new()),
                prepare_calls: AtomicU64::new(0),
                execute_calls: AtomicU64::new(0),
                log: Mutex::new(Vec::new()),
            }),
        }
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// A frozen, empty schedule: the wrapper passes everything through
    /// (still counting calls and honoring [`FaultPlan::on_execute`]
    /// hooks). Use [`FaultPlan::build_with`] / [`FaultPlan::seeded`]
    /// for schedules with faults.
    pub fn new() -> FaultPlan {
        FaultPlanBuilder::default().build()
    }

    /// Start an explicit (unseeded) schedule builder.
    pub fn build_with() -> FaultPlanBuilder {
        FaultPlanBuilder::default()
    }

    /// Start a seeded schedule builder: [`FaultPlanBuilder::
    /// scatter_execute`] derives fault positions deterministically from
    /// `seed`, so one seed always yields one schedule.
    pub fn seeded(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            schedule: Schedule::default(),
            rng: Some(SmallRng::seed_from_u64(seed)),
        }
    }

    /// Convenience: a frozen plan with a single fault at the n-th
    /// execute call.
    pub fn fault_execute(nth: u64, fault: Fault) -> FaultPlan {
        FaultPlanBuilder::default()
            .fault_execute(nth, fault)
            .build()
    }

    /// Convenience: a frozen plan with a single fault at the n-th
    /// prepare call.
    pub fn fault_prepare(nth: u64, fault: Fault) -> FaultPlan {
        FaultPlanBuilder::default()
            .fault_prepare(nth, fault)
            .build()
    }

    /// Run `hook` immediately before the n-th execute call (before any
    /// fault scheduled there fires). The hook sees the call index. This
    /// is the deterministic seam for racing a catalog mutation against
    /// an in-flight statement.
    pub fn on_execute(&self, nth: u64, hook: impl Fn(u64) + Send + Sync + 'static) -> &FaultPlan {
        self.inner
            .hooks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(nth, Box::new(hook));
        self
    }

    /// Wrap a backend: every `prepare`/`execute`/`profile` consults this
    /// plan's schedule first. The wrapper reports the inner backend's
    /// name suffixed with `+faults` and folds the schedule into
    /// [`Backend::cache_params`] so a faulty backend never shares cached
    /// plans with its clean twin.
    pub fn wrap(&self, inner: Arc<dyn Backend>) -> Arc<FaultyBackend> {
        Arc::new(FaultyBackend {
            inner,
            plan: self.clone(),
        })
    }

    /// The ordered log of every injection that actually fired.
    pub fn log(&self) -> Vec<Injection> {
        self.inner
            .log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Faults scheduled on execute calls (index → fault), for tests that
    /// want to predict the exact failure sequence.
    pub fn execute_schedule(&self) -> Vec<(u64, Fault)> {
        self.inner
            .schedule
            .execute
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// How many `Backend::prepare` calls the wrapper has intercepted.
    pub fn prepare_calls(&self) -> u64 {
        self.inner.prepare_calls.load(Ordering::Relaxed)
    }

    /// How many execute/profile calls the wrapper has intercepted.
    pub fn execute_calls(&self) -> u64 {
        self.inner.execute_calls.load(Ordering::Relaxed)
    }

    fn record(&self, site: Site, call: u64, fault: Fault) {
        self.inner
            .log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Injection { site, call, fault });
    }

    /// Apply whatever the schedule says for this call. `Ok(())` means
    /// "proceed with the real call" (possibly after an injected sleep);
    /// `Err` and panics are the injections themselves.
    fn apply(&self, site: Site, call: u64) -> Result<()> {
        let fault = match site {
            Site::Prepare => self.inner.schedule.prepare.get(&call).copied(),
            Site::Execute => self.inner.schedule.execute.get(&call).copied(),
        };
        let Some(fault) = fault else { return Ok(()) };
        self.record(site, call, fault);
        match fault {
            Fault::Error => Err(VoodooError::Backend(format!(
                "injected fault: {site:?} call {call}"
            ))),
            Fault::Panic => panic!("injected panic: {site:?} call {call}"),
            Fault::PoolPoison => {
                // Fan real tasks across the current morsel pool; the
                // poisoned one re-raises on this (the statement's)
                // thread, exactly like a skewed kernel's morsel would.
                let _ = voodoo_compile::pool::current().run(
                    (0..4usize)
                        .map(|i| {
                            move || {
                                assert!(i != 2, "injected pool poison: {site:?} call {call}");
                                i
                            }
                        })
                        .collect::<Vec<_>>(),
                );
                unreachable!("poisoned pool task must re-raise");
            }
            Fault::Latency(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }

    fn before_execute(&self) -> Result<()> {
        let call = self.inner.execute_calls.fetch_add(1, Ordering::Relaxed);
        // Hooks run before faults: a test can mutate the catalog and
        // *then* have the same call fail, in one deterministic step.
        {
            let hooks = self.inner.hooks.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(hook) = hooks.get(&call) {
                hook(call);
            }
        }
        self.apply(Site::Execute, call)
    }
}

/// A [`Backend`] wrapped in a [`FaultPlan`]. Prepared plans carry the
/// plan too, so execute-site faults fire even on cache-hit executions.
pub struct FaultyBackend {
    inner: Arc<dyn Backend>,
    plan: FaultPlan,
}

impl std::fmt::Debug for FaultyBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyBackend")
            .field("inner", &self.inner.name())
            .field("plan", &self.plan)
            .finish()
    }
}

impl Backend for FaultyBackend {
    fn name(&self) -> &str {
        // The registry keys plans by registration name + epoch, so the
        // self-reported name is informational; still, make wrapping
        // visible in explain output and diagnostics.
        "faulty"
    }

    fn prepare(&self, program: &Program, catalog: &Catalog) -> Result<Arc<dyn PreparedPlan>> {
        let call = self
            .plan
            .inner
            .prepare_calls
            .fetch_add(1, Ordering::Relaxed);
        self.plan.apply(Site::Prepare, call)?;
        let inner = self.inner.prepare(program, catalog)?;
        Ok(Arc::new(FaultyPlan {
            inner,
            plan: self.plan.clone(),
        }))
    }

    fn cache_params(&self) -> String {
        // Distinct from the clean inner backend's params, so a cache
        // that ignored registry identity still could not alias them.
        format!("faults({})", self.inner.cache_params())
    }
}

struct FaultyPlan {
    inner: Arc<dyn PreparedPlan>,
    plan: FaultPlan,
}

impl PreparedPlan for FaultyPlan {
    fn backend_name(&self) -> &str {
        "faulty"
    }

    fn execute(&self, catalog: &Catalog) -> Result<ExecOutput> {
        self.plan.before_execute()?;
        self.inner.execute(catalog)
    }

    fn explain(&self) -> String {
        format!("fault-injection wrapper over:\n{}", self.inner.explain())
    }

    fn profile(&self, catalog: &Catalog) -> Result<PlanProfile> {
        self.plan.before_execute()?;
        self.inner.profile(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voodoo_backend::InterpBackend;

    fn tiny() -> (Catalog, Program) {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("t", &[1, 2, 3]);
        let mut p = Program::new();
        let t = p.load("t");
        p.ret(t);
        (cat, p)
    }

    #[test]
    fn explicit_schedule_fires_at_exact_indices() {
        let (cat, p) = tiny();
        let plan = FaultPlan::build_with()
            .fault_execute(1, Fault::Error)
            .fault_execute(3, Fault::Latency(Duration::from_millis(1)))
            .build();
        let backend = plan.wrap(Arc::new(InterpBackend::new()));
        let prepared = backend.prepare(&p, &cat).unwrap();
        assert!(prepared.execute(&cat).is_ok());
        assert!(prepared.execute(&cat).is_err());
        assert!(prepared.execute(&cat).is_ok());
        assert!(prepared.execute(&cat).is_ok()); // latency: slow, not failed
        assert_eq!(
            plan.log(),
            vec![
                Injection {
                    site: Site::Execute,
                    call: 1,
                    fault: Fault::Error
                },
                Injection {
                    site: Site::Execute,
                    call: 3,
                    fault: Fault::Latency(Duration::from_millis(1))
                },
            ]
        );
    }

    #[test]
    fn seeded_scatter_is_deterministic_per_seed() {
        let a = FaultPlan::seeded(42)
            .scatter_execute(5, 50, Fault::Error)
            .build();
        let b = FaultPlan::seeded(42)
            .scatter_execute(5, 50, Fault::Error)
            .build();
        let c = FaultPlan::seeded(43)
            .scatter_execute(5, 50, Fault::Error)
            .build();
        assert_eq!(a.execute_schedule(), b.execute_schedule());
        assert_ne!(a.execute_schedule(), c.execute_schedule());
        assert_eq!(a.execute_schedule().len(), 5);
    }

    #[test]
    fn prepare_fault_is_transient_not_sticky() {
        let (cat, p) = tiny();
        let plan = FaultPlan::fault_prepare(0, Fault::Error);
        let backend = plan.wrap(Arc::new(InterpBackend::new()));
        assert!(backend.prepare(&p, &cat).is_err());
        let prepared = backend.prepare(&p, &cat).expect("second prepare clean");
        assert!(prepared.execute(&cat).is_ok());
    }

    #[test]
    fn hook_runs_before_the_call_it_is_keyed_to() {
        let (cat, p) = tiny();
        let plan = FaultPlan::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        plan.on_execute(1, move |call| seen2.lock().unwrap().push(call));
        let backend = plan.wrap(Arc::new(InterpBackend::new()));
        let prepared = backend.prepare(&p, &cat).unwrap();
        prepared.execute(&cat).unwrap();
        assert!(seen.lock().unwrap().is_empty());
        prepared.execute(&cat).unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![1]);
    }
}
