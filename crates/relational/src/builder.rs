//! Plan-construction helpers and padded-result extraction.

use voodoo_core::{AggKind, BinOp, KeyPath, Program, StructuredVector, VRef};

/// A fluent wrapper over [`Program`] for relational lowering.
pub struct QB {
    /// The program under construction.
    pub p: Program,
}

impl QB {
    /// Start a fresh plan.
    pub fn new() -> QB {
        QB { p: Program::new() }
    }

    /// Load a table.
    pub fn table(&mut self, name: &str) -> VRef {
        self.p.load(name)
    }

    /// Elementwise binary over explicit attributes, output `.val`.
    pub fn bin(&mut self, op: BinOp, l: VRef, lkp: &str, r: VRef, rkp: &str) -> VRef {
        self.p.binary_kp(
            op,
            l,
            KeyPath::new(lkp),
            r,
            KeyPath::new(rkp),
            KeyPath::val(),
        )
    }

    /// Elementwise binary against a constant, output `.val`.
    pub fn bin_c(&mut self, op: BinOp, l: VRef, lkp: &str, c: i64) -> VRef {
        self.p
            .binary_const(op, l, KeyPath::new(lkp), c, KeyPath::val())
    }

    /// `lo <= v.kp < hi` as a boolean column.
    pub fn in_range(&mut self, v: VRef, kp: &str, lo: i64, hi: i64) -> VRef {
        let ge = self.bin_c(BinOp::GreaterEquals, v, kp, lo);
        let lt = self.bin_c(BinOp::Less, v, kp, hi);
        self.p.binary(BinOp::LogicalAnd, ge, lt)
    }

    /// `v.kp == c` as a boolean column.
    pub fn eq_c(&mut self, v: VRef, kp: &str, c: i64) -> VRef {
        self.bin_c(BinOp::Equals, v, kp, c)
    }

    /// Conjunction of boolean columns.
    pub fn and(&mut self, parts: &[VRef]) -> VRef {
        let mut acc = parts[0];
        for &x in &parts[1..] {
            acc = self.p.binary(BinOp::LogicalAnd, acc, x);
        }
        acc
    }

    /// Disjunction of boolean columns.
    pub fn or(&mut self, parts: &[VRef]) -> VRef {
        let mut acc = parts[0];
        for &x in &parts[1..] {
            acc = self.p.binary(BinOp::LogicalOr, acc, x);
        }
        acc
    }

    /// `v1.val * v2.val` (the masking idiom: value × 0/1 predicate).
    pub fn masked(&mut self, v: VRef, mask: VRef) -> VRef {
        self.p.mul(v, mask)
    }

    /// Positional FK join: resolve `fk.kp` into `target` (all columns).
    /// Keys are dense, so this is the paper's identity-hashed join.
    pub fn fk_gather(&mut self, target: VRef, fk: VRef, kp: &str) -> VRef {
        self.p.gather_kp(target, fk, KeyPath::new(kp))
    }

    /// `100 - v.kp` etc. — constant on the left.
    pub fn rsub_c(&mut self, c: i64, v: VRef, kp: &str) -> VRef {
        let cc = self.p.constant(c);
        self.p.binary_kp(
            BinOp::Subtract,
            cc,
            KeyPath::val(),
            v,
            KeyPath::new(kp),
            KeyPath::val(),
        )
    }

    /// Revenue: `ext.kp1 * (100 - disc.kp2)` (cents × 100).
    pub fn revenue(&mut self, li: VRef, ext_kp: &str, disc_kp: &str) -> VRef {
        let d = self.rsub_c(100, li, disc_kp);
        self.p.binary_kp(
            BinOp::Multiply,
            li,
            KeyPath::new(ext_kp),
            d,
            KeyPath::val(),
            KeyPath::val(),
        )
    }

    /// Dense-domain grouped aggregation (the Figure 10/11 pattern):
    /// partition `key.val ∈ [0, domain)` over `Range` pivots, scatter, and
    /// fold each value column per group. Returns `(key_fold, sum_folds)` —
    /// all padded-aligned, extracted with [`extract_grouped`].
    ///
    /// Compiles to a single virtual-scatter pass (paper §3.1.3).
    pub fn group_sums(&mut self, key: VRef, domain: usize, vals: &[VRef]) -> (VRef, Vec<VRef>) {
        let with_kinds: Vec<(VRef, AggKind)> = vals.iter().map(|&v| (v, AggKind::Sum)).collect();
        self.group_aggs(key, domain, &with_kinds)
    }

    /// [`Self::group_sums`] with a per-column aggregation kind — the SQL
    /// frontend's `MIN`/`MAX` lowering path. Same single virtual-scatter
    /// pattern; only the per-run combine differs.
    pub fn group_aggs(
        &mut self,
        key: VRef,
        domain: usize,
        vals: &[(VRef, AggKind)],
    ) -> (VRef, Vec<VRef>) {
        // Assemble the scattered tuple: key as .k plus each value as .vI.
        let mut tuple = self.p.project(key, KeyPath::val(), KeyPath::new(".k"));
        for (i, &(v, _)) in vals.iter().enumerate() {
            tuple = self.p.zip_kp(
                KeyPath::root(),
                tuple,
                KeyPath::root(),
                KeyPath::new(&format!(".v{i}")),
                v,
                KeyPath::val(),
            );
        }
        let pivots = self.p.range(0, domain, 1);
        let pos = self
            .p
            .partition(tuple, KeyPath::new(".k"), pivots, KeyPath::val());
        let scattered = self.p.scatter(tuple, tuple, pos);
        let key_fold = self.p.fold_agg_kp(
            AggKind::Max,
            scattered,
            Some(KeyPath::new(".k")),
            KeyPath::new(".k"),
            KeyPath::val(),
        );
        let sums = vals
            .iter()
            .enumerate()
            .map(|(i, &(_, kind))| {
                self.p.fold_agg_kp(
                    kind,
                    scattered,
                    Some(KeyPath::new(".k")),
                    KeyPath::new(&format!(".v{i}")),
                    KeyPath::val(),
                )
            })
            .collect();
        (key_fold, sums)
    }

    /// Global masked sum: `sum(v.val)` over the whole vector.
    pub fn global_sum(&mut self, v: VRef) -> VRef {
        self.p.fold_sum_global(v)
    }

    /// Return a statement's result.
    pub fn ret(&mut self, v: VRef) {
        self.p.ret(v);
    }

    /// Finish building.
    pub fn finish(self) -> Program {
        self.p
    }
}

impl Default for QB {
    fn default() -> Self {
        QB::new()
    }
}

/// Extract grouped results from padded-aligned returned vectors: the first
/// vector carries group keys (non-ε at group starts), the rest the
/// aggregates (ε read as 0).
pub fn extract_grouped(
    key_vec: &StructuredVector,
    sums: &[&StructuredVector],
) -> Vec<(i64, Vec<i64>)> {
    let kp = KeyPath::val();
    let kcol = key_vec.column(&kp).expect("key column");
    let mut rows = Vec::new();
    for i in 0..key_vec.len() {
        if let Some(k) = kcol.get(i) {
            let vals = sums
                .iter()
                .map(|s| {
                    s.column(&kp)
                        .and_then(|c| c.get(i))
                        .map(|v| v.as_i64())
                        .unwrap_or(0)
                })
                .collect();
            rows.push((k.as_i64(), vals));
        }
    }
    rows
}

/// Extract a global (single-run) aggregate: the value at slot 0, or 0 for ε.
pub fn extract_scalar(v: &StructuredVector) -> i64 {
    if v.is_empty() {
        return 0;
    }
    v.value_at(0, &KeyPath::val())
        .map(|x| x.as_i64())
        .unwrap_or(0)
}

/// Extract every non-ε `(position, value)` of a padded vector.
pub fn extract_present(v: &StructuredVector) -> Vec<(usize, i64)> {
    let kp = KeyPath::val();
    let col = v.column(&kp).expect("val column");
    (0..v.len())
        .filter_map(|i| col.get(i).map(|x| (i, x.as_i64())))
        .collect()
}

/// ε-tolerant dense read: value at slot `i` or 0.
pub fn at_or_zero(v: &StructuredVector, i: usize) -> i64 {
    v.value_at(i, &KeyPath::val())
        .map(|x| x.as_i64())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use voodoo_interp::Interpreter;
    use voodoo_storage::Catalog;

    #[test]
    fn group_sums_roundtrip() {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("keys", &[2, 0, 1, 0, 2, 2]);
        cat.put_i64_column("vals", &[10, 1, 5, 2, 20, 30]);
        let mut qb = QB::new();
        let k = qb.table("keys");
        let v = qb.table("vals");
        let (kf, sums) = qb.group_sums(k, 3, &[v]);
        qb.ret(kf);
        qb.ret(sums[0]);
        let p = qb.finish();
        let out = Interpreter::new(&cat).run_program(&p).unwrap();
        let rows = extract_grouped(&out.returns[0], &[&out.returns[1]]);
        assert_eq!(rows, vec![(0, vec![3]), (1, vec![5]), (2, vec![60])]);
    }

    #[test]
    fn range_and_masks() {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("t", &[1, 5, 9, 15]);
        let mut qb = QB::new();
        let t = qb.table("t");
        let m = qb.in_range(t, ".val", 5, 10);
        let masked = qb.masked(t, m);
        let s = qb.global_sum(masked);
        qb.ret(s);
        let out = Interpreter::new(&cat).run(&qb.finish()).unwrap();
        assert_eq!(extract_scalar(&out), 14);
    }

    #[test]
    fn scalar_extraction_of_empty() {
        let mut cat = Catalog::in_memory();
        cat.put_i64_column("t", &[]);
        let mut qb = QB::new();
        let t = qb.table("t");
        let s = qb.global_sum(t);
        qb.ret(s);
        let out = Interpreter::new(&cat).run(&qb.finish()).unwrap();
        assert_eq!(extract_scalar(&out), 0);
    }
}
