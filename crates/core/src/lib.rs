//! # voodoo-core — the Voodoo vector algebra
//!
//! This crate implements the algebra of *Pirk et al., "Voodoo - A Vector
//! Algebra for Portable Database Performance on Modern Hardware" (VLDB 2016)*:
//!
//! * [`scalar`] — scalar types/values and the elementwise operator kernels,
//! * [`keypath`] — keypaths (`.a.b`) addressing attributes of structured vectors,
//! * [`schema`] — flattened schemas of structured vectors,
//! * [`vector`] — [`vector::StructuredVector`]: the only data type of the
//!   algebra (paper §2.1), including first-class *empty slots* (ε),
//! * [`ops`] — one operator per row of the paper's Table 2,
//! * [`program`] — SSA programs and the fluent [`program::Program`] builder,
//! * [`runmeta`] — control-vector run metadata, `v[i] = from + ⌊i·step⌋ mod cap`
//!   (paper §3.1.1 "Maintaining Run Metadata"),
//! * [`transform`] — program rewrites: common-subexpression and dead-code
//!   elimination (the sharing the paper's §2 "Minimal" principle enables),
//! * [`typecheck`] — static shape/type inference for whole programs.
//!
//! The algebra is deliberately **minimal, declarative, deterministic and
//! explicit** (paper §2): operators are stateless, sizes of all outputs are
//! statically known given input sizes, and no operator contains runtime
//! control flow.
//!
//! Backends live in separate crates: `voodoo-interp` (the materializing
//! reference interpreter of §3.2) and `voodoo-compile` (the fragment
//! compiler of §3.1). Static analysis over the algebra ([`diag`] holds
//! the shared [`diag::Diagnostic`] type) lives in `voodoo-verify`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(rust_2018_idioms, unused_qualifications)]

pub mod diag;
pub mod error;
pub mod keypath;
pub mod ops;
pub mod program;
pub mod runmeta;
pub mod scalar;
pub mod schema;
pub mod transform;
pub mod typecheck;
pub mod vector;

pub use diag::{Diagnostic, Pass};
pub use error::{Result, VoodooError};
pub use keypath::KeyPath;
pub use ops::{AggKind, BinOp, Op, SizeSpec};
pub use program::{Program, Statement, VRef};
pub use runmeta::RunMeta;
pub use scalar::{ScalarType, ScalarValue};
pub use schema::Schema;
pub use transform::{cse, dce, optimize, RewriteStats};
pub use vector::{Buffer, Column, StructuredVector};

/// Providers of table schemas and sizes for `Load` statements.
///
/// The Voodoo compiler runs *after* data is loaded ("since we generate code,
/// we have information about factors such as datasizes at compile time",
/// paper footnote 1), so both schema and row count are available.
pub trait TableProvider {
    /// Flattened schema of the named table, if it exists.
    fn table_schema(&self, name: &str) -> Option<Schema>;
    /// Row count of the named table, if it exists.
    fn table_len(&self, name: &str) -> Option<usize>;
}
